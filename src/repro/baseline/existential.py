"""Baseline 2: the existential-type closure conversion of Section 3.1.

This is the *well-known solution* the paper shows does **not** scale to CC:
encode closures as existential packages

    (Π x:A. B)*  =  ∃α:⋆. (Code α A* B*) × α

with the environment's type hidden by the existential.  CC has no
primitive ∃, but the impredicative ⋆ lets us Church-encode weak sums::

    ∃α:⋆. T[α]  ≜  Π C:⋆. (Π α:⋆. T[α] → C) → C

The translation below targets CC itself using that encoding.  On the
simply-typed fragment it is type preserving — exactly the Minamide,
Morrisett & Harper result.  On dependently typed programs it breaks in the
two ways Section 3.1 predicts, and the CC kernel reports them:

1. **Impredicativity failure.**  A captured *type* variable makes the
   environment type large (``Σ _:⋆. … : □``), but the encoded ∃ can only
   hide *small* types — instantiating ``α:⋆`` at the environment type is
   a universe error.

2. **Synchronization failure.**  When the function's type mentions a
   captured *term* variable, the code's type must project it from the
   (hidden) environment, so the concrete code type has ``fst n`` where the
   existential package's annotation expects the original variable — a
   [Conv] mismatch.

The test suite and benchmark E11 run both this baseline and the paper's
translation over the same corpus and tabulate who survives type checking.
"""

from __future__ import annotations

from repro import cc
from repro.cc.context import Context
from repro.common.errors import TranslationError, TypeCheckError
from repro.common.names import fresh

__all__ = [
    "CHURCH_UNIT",
    "CHURCH_UNIT_VALUE",
    "classify_failure",
    "exists_type",
    "translate_existential",
]

#: The Church unit type terminates environment tuples (CC has no ``1``).
CHURCH_UNIT: cc.Term = cc.Pi("A", cc.Star(), cc.arrow(cc.Var("A"), cc.Var("A")))
CHURCH_UNIT_VALUE: cc.Term = cc.Lam("A", cc.Star(), cc.Lam("x", cc.Var("A"), cc.Var("x")))


def exists_type(alpha: str, body: cc.Term) -> cc.Term:
    """``∃ alpha:⋆. body`` via the impredicative Church encoding."""
    result = fresh("C")
    return cc.Pi(
        result,
        cc.Star(),
        cc.arrow(
            cc.Pi(alpha, cc.Star(), cc.arrow(body, cc.Var(result))),
            cc.Var(result),
        ),
    )


def _code_type(alpha: cc.Term, domain: cc.Term, arg_name: str, result: cc.Term) -> cc.Term:
    """``Π n:α. Π x:A*. B*`` — the curried code type of the encoding."""
    env = fresh("n")
    return cc.Pi(env, alpha, cc.Pi(arg_name, domain, result))


def _closure_pair_type(alpha_var: cc.Term, domain: cc.Term, arg_name: str, result: cc.Term) -> cc.Term:
    """``(Code α A* B*) × α`` as a (non-dependent) Σ."""
    return cc.Sigma(fresh("_"), _code_type(alpha_var, domain, arg_name, result), alpha_var)


def translate_existential(ctx: Context, term: cc.Term) -> cc.Term:
    """The Section 3.1 translation, CC → CC (with encoded ∃).

    Total on syntax: it always *produces* a term; type preservation is
    what fails on dependent inputs, and only the CC kernel can tell.
    """
    match term:
        case cc.Var() | cc.Star() | cc.Box() | cc.Bool() | cc.BoolLit() | cc.Nat() | cc.Zero():
            return term
        case cc.Pi(name, domain, codomain):
            alpha = fresh("alpha")
            domain_t = translate_existential(ctx, domain)
            codomain_t = translate_existential(ctx.extend(name, domain), codomain)
            return exists_type(
                alpha,
                _closure_pair_type(cc.Var(alpha), domain_t, name, codomain_t),
            )
        case cc.Lam():
            return _translate_lambda(ctx, term)
        case cc.App(fn, arg):
            return _translate_application(ctx, fn, arg)
        case cc.Let(name, bound, annot, body):
            return cc.Let(
                name,
                translate_existential(ctx, bound),
                translate_existential(ctx, annot),
                translate_existential(ctx.define(name, bound, annot), body),
            )
        case cc.Sigma(name, first, second):
            return cc.Sigma(
                name,
                translate_existential(ctx, first),
                translate_existential(ctx.extend(name, first), second),
            )
        case cc.Pair(fst_val, snd_val, annot):
            return cc.Pair(
                translate_existential(ctx, fst_val),
                translate_existential(ctx, snd_val),
                translate_existential(ctx, annot),
            )
        case cc.Fst(pair):
            return cc.Fst(translate_existential(ctx, pair))
        case cc.Snd(pair):
            return cc.Snd(translate_existential(ctx, pair))
        case cc.If(cond, then_branch, else_branch):
            return cc.If(
                translate_existential(ctx, cond),
                translate_existential(ctx, then_branch),
                translate_existential(ctx, else_branch),
            )
        case cc.Succ(pred):
            return cc.Succ(translate_existential(ctx, pred))
        case cc.NatElim(motive, base, step, target):
            return cc.NatElim(
                translate_existential(ctx, motive),
                translate_existential(ctx, base),
                translate_existential(ctx, step),
                translate_existential(ctx, target),
            )
        case _:
            raise TranslationError(f"not a CC term: {term!r}")


def _free_variable_bindings(ctx: Context, term: cc.Term) -> list:
    """Free variables of ``term`` with their context bindings, Γ-ordered."""
    names = sorted(cc.free_vars(term) & set(ctx.names()), key=ctx.position)
    return [ctx.entries[ctx.position(name)] for name in names]


def _translate_lambda(ctx: Context, term: cc.Lam) -> cc.Term:
    """``(λ x:A. e)* = pack ⟨EnvT, ⟨code, env⟩⟩``.

    The paper's Section 3 recipe: code takes the (concrete) environment
    tuple and the argument, rebinding captured variables by projection.
    """
    arg_name = term.name
    try:
        body_type = cc.infer(ctx.extend(arg_name, term.domain), term.body)
    except TypeCheckError as error:
        raise TranslationError(f"ill-typed function: {error}") from error

    captured = _free_variable_bindings(
        ctx, cc.Pi(arg_name, term.domain, body_type)
    )
    captured_body = _free_variable_bindings(ctx, term)
    names_seen = {b.name for b in captured}
    captured += [b for b in captured_body if b.name not in names_seen]
    captured.sort(key=lambda b: ctx.position(b.name))

    # Environment type: right-nested (non-dependent) Σ over Church unit.
    env_type: cc.Term = CHURCH_UNIT
    for binding in reversed(captured):
        env_type = cc.Sigma(fresh("_"), translate_existential(ctx, binding.type_), env_type)

    # Environment tuple ⟨x0, ⟨x1, …⟩⟩.
    env_value: cc.Term = CHURCH_UNIT_VALUE
    tail_type = env_type
    tuples: list[tuple[cc.Term, cc.Term]] = []
    for binding in captured:
        tuples.append((cc.Var(binding.name), tail_type))
        assert isinstance(tail_type, cc.Sigma)
        tail_type = tail_type.second
    for value, annot in reversed(tuples):
        env_value = cc.Pair(value, env_value, annot)

    # Code: λ n:EnvT. λ x:A*. body* with captured variables projected out.
    env_name = fresh("n")
    projections: dict[str, cc.Term] = {}
    cursor: cc.Term = cc.Var(env_name)
    for binding in captured:
        projections[binding.name] = cc.Fst(cursor)
        cursor = cc.Snd(cursor)

    domain_t = translate_existential(ctx, term.domain)
    body_t = translate_existential(ctx.extend(arg_name, term.domain), term.body)
    code = cc.Lam(
        env_name,
        env_type,
        cc.Lam(arg_name, cc.subst(domain_t, projections), cc.subst(body_t, projections)),
    )

    # pack: λ C:⋆. λ k:(Π α:⋆. (Code α A* B*) × α → C). k EnvT ⟨code, env⟩.
    result_t = translate_existential(ctx.extend(arg_name, term.domain), body_type)
    alpha = fresh("alpha")
    pair_type_abstract = _closure_pair_type(cc.Var(alpha), domain_t, arg_name, result_t)
    pair_type_concrete = cc.subst1(pair_type_abstract, alpha, env_type)
    consumer = fresh("k")
    result_var = fresh("C")
    return cc.Lam(
        result_var,
        cc.Star(),
        cc.Lam(
            consumer,
            cc.Pi(alpha, cc.Star(), cc.arrow(pair_type_abstract, cc.Var(result_var))),
            cc.make_app(
                cc.Var(consumer),
                env_type,
                cc.Pair(code, env_value, pair_type_concrete),
            ),
        ),
    )


def _translate_application(ctx: Context, fn: cc.Term, arg: cc.Term) -> cc.Term:
    """``(e1 e2)* = e1* R* (λ α. λ p. fst p (snd p) e2*)`` — unpack & apply."""
    try:
        fn_type = cc.whnf(ctx, cc.infer(ctx, fn))
    except TypeCheckError as error:
        raise TranslationError(f"ill-typed application head: {error}") from error
    if not isinstance(fn_type, cc.Pi):
        raise TranslationError("application head does not have Π type")

    result_type = cc.subst1(fn_type.codomain, fn_type.name, arg)
    result_t = translate_existential(ctx, result_type)
    domain_t = translate_existential(ctx, fn_type.domain)
    codomain_t = translate_existential(
        ctx.extend(fn_type.name, fn_type.domain), fn_type.codomain
    )

    alpha = fresh("alpha")
    package = fresh("p")
    pair_type = _closure_pair_type(cc.Var(alpha), domain_t, fn_type.name, codomain_t)
    unpacker = cc.Lam(
        alpha,
        cc.Star(),
        cc.Lam(
            package,
            pair_type,
            cc.make_app(
                cc.Fst(cc.Var(package)),
                cc.Snd(cc.Var(package)),
                translate_existential(ctx, arg),
            ),
        ),
    )
    return cc.make_app(translate_existential(ctx, fn), result_t, unpacker)


def classify_failure(ctx: Context, term: cc.Term) -> str:
    """Run the baseline and classify the outcome.

    Returns one of:

    * ``"type-preserving"`` — the output type checks in CC,
    * ``"universe"`` — the Section 3.1 impredicativity failure,
    * ``"mismatch"`` — the Section 3.1 environment-synchronization failure,
    * ``"other"`` — any other kernel rejection.
    """
    try:
        output = translate_existential(ctx, term)
    except TranslationError:
        return "other"
    try:
        cc.infer(ctx, output)
    except TypeCheckError as error:
        message = str(error)
        if "expected a type" in message or "□" in message:
            return "universe"
        if "type mismatch" in message:
            return "mismatch"
        return "other"
    return "type-preserving"
