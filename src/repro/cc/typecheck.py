"""The CC type checker (paper Figures 3 and 4).

Synthesis-style: every CC term carries enough annotations for its type to
be computed, so :func:`infer` implements the typing judgment directly and
:func:`check` is inference followed by the [Conv] rule (definitional
equivalence of the inferred and expected types).

Universe discipline (Section 2):

* ``⋆ : □``; ``□`` has no type.
* Π is impredicative in ``⋆`` ([Prod-⋆]: the universe of ``Π x:A. B`` is
  the universe of ``B``) and predicative at ``□``.
* Σ is small only when both components are small ([Sig-⋆]); otherwise it
  lands in ``□``.  Allowing a large Σ whenever *either* side is large is
  the reading the paper's own environment telescopes (``Σ (A:⋆ …)``
  terminated by the unit type) require; see DESIGN.md §3.
"""

from __future__ import annotations

from repro.cc.ast import (
    App,
    Bool,
    BoolLit,
    Box,
    Fst,
    If,
    Lam,
    Let,
    Nat,
    NatElim,
    Pair,
    Pi,
    Sigma,
    Snd,
    Star,
    Succ,
    Term,
    Var,
    Zero,
)
from repro.cc.context import Context
from repro.cc.equiv import equivalent
from repro.cc.pretty import pretty
from repro.cc.reduce import whnf
from repro.cc.subst import subst1
from repro.common.errors import TypeCheckError
from repro.common.names import fresh

__all__ = ["check", "check_context", "infer", "infer_universe", "well_typed"]


def infer(ctx: Context, term: Term) -> Term:
    """Synthesize the type of ``term`` under ``ctx`` (judgment Γ ⊢ e : A).

    Raises :class:`TypeCheckError` if no type exists.  The returned type is
    not necessarily normal; callers compare with ≡.
    """
    match term:
        case Star():
            return Box()  # [Ax-*]
        case Box():
            raise TypeCheckError("□ has no type (it is not a valid term)")
        case Var(name):
            binding = ctx.lookup(name)
            if binding is None:
                raise TypeCheckError(f"unbound variable {name!r}")
            return binding.type_  # [Var]
        case Pi(name, domain, codomain):
            infer_universe(ctx, domain)
            codomain_universe = infer_universe(ctx.extend(name, domain), codomain)
            return codomain_universe  # [Prod-*] / [Prod-□]
        case Lam(name, domain, body):
            infer_universe(ctx, domain)
            body_type = infer(ctx.extend(name, domain), body)
            return Pi(name, domain, body_type)  # [Lam]
        case App(fn, arg):
            fn_type = whnf(ctx, infer(ctx, fn))
            if not isinstance(fn_type, Pi):
                raise TypeCheckError(
                    f"application head has non-Π type {pretty(fn_type)}"
                ).with_note(f"checking {pretty(term)}")
            check(ctx, arg, fn_type.domain)
            return subst1(fn_type.codomain, fn_type.name, arg)  # [App]
        case Let(name, bound, annot, body):
            infer_universe(ctx, annot)
            check(ctx, bound, annot)
            body_type = infer(ctx.define(name, bound, annot), body)
            return subst1(body_type, name, bound)  # [Let]
        case Sigma(name, first, second):
            first_universe = infer_universe(ctx, first)
            second_universe = infer_universe(ctx.extend(name, first), second)
            if isinstance(first_universe, Star) and isinstance(second_universe, Star):
                return Star()  # [Sig-*]
            return Box()  # [Sig-□]
        case Pair(fst_val, snd_val, annot):
            infer_universe(ctx, annot)
            annot_whnf = whnf(ctx, annot)
            if not isinstance(annot_whnf, Sigma):
                raise TypeCheckError(
                    f"pair annotation {pretty(annot)} is not a Σ type"
                ).with_note(f"checking {pretty(term)}")
            check(ctx, fst_val, annot_whnf.first)
            check(ctx, snd_val, subst1(annot_whnf.second, annot_whnf.name, fst_val))
            return annot  # [Pair]
        case Fst(pair):
            pair_type = whnf(ctx, infer(ctx, pair))
            if not isinstance(pair_type, Sigma):
                raise TypeCheckError(
                    f"fst of non-Σ type {pretty(pair_type)}"
                ).with_note(f"checking {pretty(term)}")
            return pair_type.first  # [Fst]
        case Snd(pair):
            pair_type = whnf(ctx, infer(ctx, pair))
            if not isinstance(pair_type, Sigma):
                raise TypeCheckError(
                    f"snd of non-Σ type {pretty(pair_type)}"
                ).with_note(f"checking {pretty(term)}")
            return subst1(pair_type.second, pair_type.name, Fst(pair))  # [Snd]
        case Bool() | Nat():
            return Star()
        case BoolLit():
            return Bool()
        case Zero():
            return Nat()
        case Succ(pred):
            check(ctx, pred, Nat())
            return Nat()
        case If(cond, then_branch, else_branch):
            check(ctx, cond, Bool())
            then_type = infer(ctx, then_branch)
            check(ctx, else_branch, then_type)
            return then_type
        case NatElim(motive, base, step, target):
            _check_motive(ctx, motive)
            check(ctx, target, Nat())
            check(ctx, base, App(motive, Zero()))
            check(ctx, step, _step_type(motive))
            return App(motive, target)
        case _:
            raise TypeCheckError(f"not a CC term: {term!r}")


def _check_motive(ctx: Context, motive: Term) -> None:
    """Require ``motive : Π _:Nat. U`` for some universe ``U``."""
    motive_type = whnf(ctx, infer(ctx, motive))
    if not isinstance(motive_type, Pi):
        raise TypeCheckError(f"natelim motive has non-Π type {pretty(motive_type)}")
    if not equivalent(ctx, motive_type.domain, Nat()):
        raise TypeCheckError(
            f"natelim motive domain {pretty(motive_type.domain)} is not Nat"
        )
    inner = ctx.extend(motive_type.name, Nat())
    codomain = whnf(inner, motive_type.codomain)
    if not isinstance(codomain, (Star, Box)):
        raise TypeCheckError(
            f"natelim motive codomain {pretty(codomain)} is not a universe"
        )


def _step_type(motive: Term) -> Term:
    """The expected type ``Π n:Nat. Π ih:(motive n). motive (succ n)``."""
    n = fresh("n")
    ih = fresh("ih")
    return Pi(n, Nat(), Pi(ih, App(motive, Var(n)), App(motive, Succ(Var(n)))))


def check(ctx: Context, term: Term, expected: Term) -> None:
    """Check ``Γ ⊢ term : expected`` (inference + the [Conv] rule)."""
    actual = infer(ctx, term)
    if not equivalent(ctx, actual, expected):
        raise TypeCheckError(
            f"type mismatch: term {pretty(term)}\n"
            f"  has type      {pretty(actual)}\n"
            f"  but expected  {pretty(expected)}"
        )


def infer_universe(ctx: Context, type_: Term) -> Star | Box:
    """Require ``type_`` to be a type; return its universe (⋆ or □)."""
    sort = whnf(ctx, infer(ctx, type_))
    if isinstance(sort, (Star, Box)):
        return sort
    raise TypeCheckError(
        f"expected a type but {pretty(type_)} has type {pretty(sort)}"
    )


def well_typed(ctx: Context, term: Term) -> bool:
    """Convenience predicate: does ``term`` have *some* type under ``ctx``?"""
    try:
        infer(ctx, term)
    except TypeCheckError:
        return False
    return True


def check_context(ctx: Context) -> None:
    """Check well-formedness ``⊢ Γ`` (paper Figure 4)."""
    prefix = Context.empty()
    for binding in ctx:
        infer_universe(prefix, binding.type_)  # [W-Assum]
        if binding.definition is not None:
            check(prefix, binding.definition, binding.type_)  # [W-Def]
        if binding.definition is None:
            prefix = prefix.extend(binding.name, binding.type_)
        else:
            prefix = prefix.define(binding.name, binding.definition, binding.type_)
