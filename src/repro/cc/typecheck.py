"""The CC type checker (paper Figures 3 and 4).

Synthesis-style: every CC term carries enough annotations for its type to
be computed, so :func:`infer` implements the typing judgment directly and
:func:`check` is inference followed by the [Conv] rule (definitional
equivalence of the inferred and expected types).

Universe discipline (Section 2):

* ``⋆ : □``; ``□`` has no type.
* Π is impredicative in ``⋆`` ([Prod-⋆]: the universe of ``Π x:A. B`` is
  the universe of ``B``) and predicative at ``□``.
* Σ is small only when both components are small ([Sig-⋆]); otherwise it
  lands in ``□``.  Allowing a large Σ whenever *either* side is large is
  the reading the paper's own environment telescopes (``Σ (A:⋆ …)``
  terminated by the unit type) require; see DESIGN.md §3.

Every judgment is memoized per (term identity, visible context bindings)
through :mod:`repro.kernel.judgment`, with the reduction fuel the original
run spent replayed on every hit — so a single :class:`Budget` threaded
through a checking run observes step counts and fuel exhaustion identical
to a cold-cache run.  Only successful judgments are cached; failures
re-derive (and therefore re-raise) from scratch.
"""

from __future__ import annotations

from repro.cc.ast import (
    App,
    Bool,
    BoolLit,
    Box,
    Fst,
    If,
    Lam,
    Let,
    Nat,
    NatElim,
    Pair,
    Pi,
    Sigma,
    Snd,
    Star,
    Succ,
    Term,
    Var,
    Zero,
)
from repro.cc.context import Context
from repro.cc.equiv import equivalent
from repro.cc.pretty import pretty
from repro.cc.reduce import Budget, whnf
from repro.cc.subst import subst1
from repro.common.errors import TypeCheckError
from repro.common.names import fresh
from repro.kernel.judgment import judgment_cache, typing_token

__all__ = ["check", "check_context", "infer", "infer_universe", "well_typed"]

# Shared leaf instances.  check/equivalent memo keys are identity-based, so
# passing one stable object for the ubiquitous ground types makes those
# entries hittable instead of pinning a fresh leaf term per call.
_STAR = Star()
_BOX = Box()
_NAT = Nat()
_BOOL = Bool()
_ZERO = Zero()


def infer(ctx: Context, term: Term, budget: Budget | None = None) -> Term:
    """Synthesize the type of ``term`` under ``ctx`` (judgment Γ ⊢ e : A).

    Raises :class:`TypeCheckError` if no type exists.  The returned type is
    not necessarily normal; callers compare with ≡.
    """
    if budget is None:
        budget = Budget()
    # O(1) judgments skip the memo round-trip: a cache entry would cost
    # more than re-deriving the axiom (and replays zero steps either way).
    match term:
        case Var(name):
            binding = ctx.lookup(name)
            if binding is None:
                raise TypeCheckError(f"unbound variable {name!r}")
            return binding.type_  # [Var]
        case Star():
            return _BOX  # [Ax-*]
        case Bool() | Nat():
            return _STAR
        case BoolLit():
            return _BOOL
        case Zero():
            return _NAT
    cache = judgment_cache()
    token = typing_token(ctx)
    hit = cache.lookup("cc.infer", term, None, token)
    if hit is not None:
        result, steps = hit
        budget.charge(steps)
        return result
    before = budget.spent
    result = _infer(ctx, term, budget)
    cache.store("cc.infer", term, None, token, result, budget.spent - before)
    return result


def _infer(ctx: Context, term: Term, budget: Budget) -> Term:
    # Leaf axioms ([Ax-*], [Var], ground types) are decided by infer()'s
    # fast path and never reach this function.
    match term:
        case Box():
            raise TypeCheckError("□ has no type (it is not a valid term)")
        case Pi(name, domain, codomain):
            infer_universe(ctx, domain, budget)
            codomain_universe = infer_universe(ctx.extend(name, domain), codomain, budget)
            return codomain_universe  # [Prod-*] / [Prod-□]
        case Lam(name, domain, body):
            infer_universe(ctx, domain, budget)
            body_type = infer(ctx.extend(name, domain), body, budget)
            return Pi(name, domain, body_type)  # [Lam]
        case App(fn, arg):
            fn_type = whnf(ctx, infer(ctx, fn, budget), budget)
            if not isinstance(fn_type, Pi):
                raise TypeCheckError(
                    f"application head has non-Π type {pretty(fn_type)}"
                ).with_note(f"checking {pretty(term)}")
            check(ctx, arg, fn_type.domain, budget)
            return subst1(fn_type.codomain, fn_type.name, arg)  # [App]
        case Let(name, bound, annot, body):
            infer_universe(ctx, annot, budget)
            check(ctx, bound, annot, budget)
            body_type = infer(ctx.define(name, bound, annot), body, budget)
            return subst1(body_type, name, bound)  # [Let]
        case Sigma(name, first, second):
            first_universe = infer_universe(ctx, first, budget)
            second_universe = infer_universe(ctx.extend(name, first), second, budget)
            if isinstance(first_universe, Star) and isinstance(second_universe, Star):
                return Star()  # [Sig-*]
            return Box()  # [Sig-□]
        case Pair(fst_val, snd_val, annot):
            infer_universe(ctx, annot, budget)
            annot_whnf = whnf(ctx, annot, budget)
            if not isinstance(annot_whnf, Sigma):
                raise TypeCheckError(
                    f"pair annotation {pretty(annot)} is not a Σ type"
                ).with_note(f"checking {pretty(term)}")
            check(ctx, fst_val, annot_whnf.first, budget)
            check(ctx, snd_val, subst1(annot_whnf.second, annot_whnf.name, fst_val), budget)
            return annot  # [Pair]
        case Fst(pair):
            pair_type = whnf(ctx, infer(ctx, pair, budget), budget)
            if not isinstance(pair_type, Sigma):
                raise TypeCheckError(
                    f"fst of non-Σ type {pretty(pair_type)}"
                ).with_note(f"checking {pretty(term)}")
            return pair_type.first  # [Fst]
        case Snd(pair):
            pair_type = whnf(ctx, infer(ctx, pair, budget), budget)
            if not isinstance(pair_type, Sigma):
                raise TypeCheckError(
                    f"snd of non-Σ type {pretty(pair_type)}"
                ).with_note(f"checking {pretty(term)}")
            return subst1(pair_type.second, pair_type.name, Fst(pair))  # [Snd]
        case Succ(pred):
            check(ctx, pred, _NAT, budget)
            return _NAT
        case If(cond, then_branch, else_branch):
            check(ctx, cond, _BOOL, budget)
            then_type = infer(ctx, then_branch, budget)
            check(ctx, else_branch, then_type, budget)
            return then_type
        case NatElim(motive, base, step, target):
            _check_motive(ctx, motive, budget)
            check(ctx, target, _NAT, budget)
            check(ctx, base, App(motive, _ZERO), budget)
            check(ctx, step, _step_type(motive), budget)
            return App(motive, target)
        case _:
            raise TypeCheckError(f"not a CC term: {term!r}")


def _check_motive(ctx: Context, motive: Term, budget: Budget) -> None:
    """Require ``motive : Π _:Nat. U`` for some universe ``U``."""
    motive_type = whnf(ctx, infer(ctx, motive, budget), budget)
    if not isinstance(motive_type, Pi):
        raise TypeCheckError(f"natelim motive has non-Π type {pretty(motive_type)}")
    if not equivalent(ctx, motive_type.domain, _NAT, budget):
        raise TypeCheckError(
            f"natelim motive domain {pretty(motive_type.domain)} is not Nat"
        )
    inner = ctx.extend(motive_type.name, _NAT)
    codomain = whnf(inner, motive_type.codomain, budget)
    if not isinstance(codomain, (Star, Box)):
        raise TypeCheckError(
            f"natelim motive codomain {pretty(codomain)} is not a universe"
        )


def _step_type(motive: Term) -> Term:
    """The expected type ``Π n:Nat. Π ih:(motive n). motive (succ n)``."""
    n = fresh("n")
    ih = fresh("ih")
    return Pi(n, _NAT, Pi(ih, App(motive, Var(n)), App(motive, Succ(Var(n)))))


def check(ctx: Context, term: Term, expected: Term, budget: Budget | None = None) -> None:
    """Check ``Γ ⊢ term : expected`` (inference + the [Conv] rule)."""
    if budget is None:
        budget = Budget()
    cache = judgment_cache()
    token = typing_token(ctx)
    hit = cache.lookup("cc.check", term, expected, token)
    if hit is not None:
        budget.charge(hit[1])
        return
    before = budget.spent
    actual = infer(ctx, term, budget)
    if not equivalent(ctx, actual, expected, budget):
        raise TypeCheckError(
            f"type mismatch: term {pretty(term)}\n"
            f"  has type      {pretty(actual)}\n"
            f"  but expected  {pretty(expected)}"
        )
    cache.store("cc.check", term, expected, token, True, budget.spent - before)


def infer_universe(ctx: Context, type_: Term, budget: Budget | None = None) -> Star | Box:
    """Require ``type_`` to be a type; return its universe (⋆ or □)."""
    if budget is None:
        budget = Budget()
    cache = judgment_cache()
    token = typing_token(ctx)
    hit = cache.lookup("cc.universe", type_, None, token)
    if hit is not None:
        sort, steps = hit
        budget.charge(steps)
        return sort
    before = budget.spent
    sort = whnf(ctx, infer(ctx, type_, budget), budget)
    if not isinstance(sort, (Star, Box)):
        raise TypeCheckError(
            f"expected a type but {pretty(type_)} has type {pretty(sort)}"
        )
    cache.store("cc.universe", type_, None, token, sort, budget.spent - before)
    return sort


def well_typed(ctx: Context, term: Term, budget: Budget | None = None) -> bool:
    """Convenience predicate: does ``term`` have *some* type under ``ctx``?"""
    try:
        infer(ctx, term, budget)
    except TypeCheckError:
        return False
    return True


def check_context(ctx: Context, budget: Budget | None = None) -> None:
    """Check well-formedness ``⊢ Γ`` (paper Figure 4)."""
    if budget is None:
        budget = Budget()
    prefix = Context.empty()
    for binding in ctx:
        infer_universe(prefix, binding.type_, budget)  # [W-Assum]
        if binding.definition is not None:
            check(prefix, binding.definition, binding.type_, budget)  # [W-Def]
        if binding.definition is None:
            prefix = prefix.extend(binding.name, binding.type_)
        else:
            prefix = prefix.define(binding.name, binding.definition, binding.type_)
