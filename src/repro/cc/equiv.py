"""Definitional equivalence for CC (paper Figure 2).

``Γ ⊢ e1 ≡ e2`` holds when both sides reduce (⊲*) to a common term, up to
the η-rules for functions ([≡-η1], [≡-η2]).  Like the paper's relation,
ours is *untyped*: decidability is preserved because the [Conv] typing rule
only invokes it on well-typed terms, which are strongly normalizing.

Algorithm: normalize both sides, then compare α-structurally with the
η-rule applied whenever exactly one side is a λ — comparing ``λ x:A. b``
against a non-λ normal form ``f`` proceeds as ``b ≡ f x`` for a shared
fresh ``x``.  Because ``f`` is normal and not a λ, ``f x`` is itself
normal, so the comparison stays within normal forms and terminates.
"""

from __future__ import annotations

from repro.cc.ast import (
    App,
    BoolLit,
    Fst,
    If,
    Lam,
    Let,
    NatElim,
    Pair,
    Pi,
    Sigma,
    Snd,
    Succ,
    Term,
    Var,
)
from repro.cc.context import Context
from repro.cc.reduce import Budget, normalize
from repro.cc.subst import subst1
from repro.common.names import fresh

__all__ = ["equivalent", "norm_equal_eta"]


def equivalent(ctx: Context, left: Term, right: Term, budget: Budget | None = None) -> bool:
    """Decide ``Γ ⊢ left ≡ right``."""
    if budget is None:
        budget = Budget()
    if left is right or left == right:  # cheap syntactic hit before normalizing
        return True
    left_nf = normalize(ctx, left, budget)
    right_nf = normalize(ctx, right, budget)
    return norm_equal_eta(left_nf, right_nf)


def norm_equal_eta(left: Term, right: Term) -> bool:
    """α-compare two *normal forms* up to η for functions."""
    return _eq(left, right, {}, {}, [0])


def _eq(
    left: Term,
    right: Term,
    env_l: dict[str, int],
    env_r: dict[str, int],
    counter: list[int],
) -> bool:
    match left, right:
        case Lam(name_l, _dom_l, body_l), Lam(name_r, _dom_r, body_r):
            # Domains are ignored, as in the paper's untyped η rules: the
            # bodies determine equivalence once both sides are functions.
            return _eq_binder(name_l, body_l, name_r, body_r, env_l, env_r, counter)
        case Lam(name_l, _dom, body_l), _:
            return _eta(name_l, body_l, right, env_l, env_r, counter)
        case _, Lam(name_r, _dom, body_r):
            return _eta(name_r, body_r, left, env_r, env_l, counter, flipped=True)
        case Var(a), Var(b):
            la, lb = env_l.get(a), env_r.get(b)
            if la is None and lb is None:
                return a == b
            return la is not None and la == lb
        case Pi(n1, d1, c1), Pi(n2, d2, c2):
            return _eq(d1, d2, env_l, env_r, counter) and _eq_binder(
                n1, c1, n2, c2, env_l, env_r, counter
            )
        case Sigma(n1, f1, s1), Sigma(n2, f2, s2):
            return _eq(f1, f2, env_l, env_r, counter) and _eq_binder(
                n1, s1, n2, s2, env_l, env_r, counter
            )
        case App(f1, a1), App(f2, a2):
            return _eq(f1, f2, env_l, env_r, counter) and _eq(a1, a2, env_l, env_r, counter)
        case Pair(f1, s1, _t1), Pair(f2, s2, _t2):
            # Pair annotations are computationally irrelevant; two pairs are
            # equivalent when their components are.
            return _eq(f1, f2, env_l, env_r, counter) and _eq(s1, s2, env_l, env_r, counter)
        case Fst(p1), Fst(p2):
            return _eq(p1, p2, env_l, env_r, counter)
        case Snd(p1), Snd(p2):
            return _eq(p1, p2, env_l, env_r, counter)
        case If(c1, t1, e1), If(c2, t2, e2):
            return (
                _eq(c1, c2, env_l, env_r, counter)
                and _eq(t1, t2, env_l, env_r, counter)
                and _eq(e1, e2, env_l, env_r, counter)
            )
        case Succ(p1), Succ(p2):
            return _eq(p1, p2, env_l, env_r, counter)
        case NatElim(m1, z1, s1, t1), NatElim(m2, z2, s2, t2):
            return (
                _eq(m1, m2, env_l, env_r, counter)
                and _eq(z1, z2, env_l, env_r, counter)
                and _eq(s1, s2, env_l, env_r, counter)
                and _eq(t1, t2, env_l, env_r, counter)
            )
        case BoolLit(a), BoolLit(b):
            return a == b
        case Let(), _:
            raise AssertionError("normal forms contain no let")
        case _:
            return type(left) is type(right)


def _eq_binder(
    name_l: str,
    body_l: Term,
    name_r: str,
    body_r: Term,
    env_l: dict[str, int],
    env_r: dict[str, int],
    counter: list[int],
) -> bool:
    index = counter[0]
    counter[0] += 1
    new_l = dict(env_l)
    new_r = dict(env_r)
    new_l[name_l] = index
    new_r[name_r] = index
    result = _eq(body_l, body_r, new_l, new_r, counter)
    counter[0] -= 1
    return result


def _eta(
    lam_name: str,
    lam_body: Term,
    other: Term,
    env_lam: dict[str, int],
    env_other: dict[str, int],
    counter: list[int],
    flipped: bool = False,
) -> bool:
    """η-compare a λ's body against ``other x`` at a shared fresh variable.

    ``flipped`` records which argument order the caller used so the
    recursive comparison keeps left/right environments straight.
    """
    probe = fresh("eta")
    body = subst1(lam_body, lam_name, Var(probe))
    expanded = App(other, Var(probe))
    if flipped:
        return _eq(expanded, body, env_other, env_lam, counter)
    return _eq(body, expanded, env_lam, env_other, counter)
