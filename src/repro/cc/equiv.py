"""Definitional equivalence for CC (paper Figure 2), decided incrementally.

``Γ ⊢ e1 ≡ e2`` holds when both sides reduce (⊲*) to a common term, up to
the η-rules for functions ([≡-η1], [≡-η2]).  Like the paper's relation,
ours is *untyped*: decidability is preserved because the [Conv] typing rule
only invokes it on well-typed terms, which are strongly normalizing.

Algorithm: the shared engine of :mod:`repro.kernel.convert` weak-head
normalizes each side lazily, compares head constructors, and short-circuits
on pointer and interned-pointer equality at every recursion point, so
divergent terms fail fast and shared subterms cost O(1) — the old
normalize-both-then-α-compare procedure decided the same relation but paid
for full normal forms even when the heads already disagreed.  This module
contributes the CC-specific ingredients: λ domains and pair annotations are
computationally irrelevant, and the η-rule fires whenever exactly one side
is a λ — comparing ``λ x:A. b`` against a non-λ weak-head normal form
``f`` proceeds as ``b[x̂/x] ≡ f x̂`` for a shared fresh ``x̂``.

Results are memoized per (left identity, right identity, context
definitions) with exact fuel replay, mirroring the normalization cache.
"""

from __future__ import annotations

from repro.cc.ast import (
    LANGUAGE,
    App,
    Bool,
    BoolLit,
    Box,
    Lam,
    Nat,
    Pair,
    Star,
    Term,
    Var,
    Zero,
)
from repro.cc.context import Context
from repro.cc.reduce import Budget, whnf
from repro.cc.subst import subst1
from repro.common.names import fresh
from repro.kernel.convert import ConversionRules, convert
from repro.kernel.judgment import judgment_cache
from repro.kernel.memo import context_token

__all__ = ["equivalent", "norm_equal_eta"]


class _CCRules(ConversionRules):
    """CC hooks: untyped function η; λ domains and pair annotations ignored."""

    lang = LANGUAGE
    irrelevant = {Lam: ("domain",), Pair: ("annot",)}
    whnf = staticmethod(whnf)

    def eta(self, left, right, ctx_l, ctx_r, scope, budget):
        left_lam = isinstance(left, Lam)
        if left_lam == isinstance(right, Lam):
            return None  # both λ (structural) or neither (no η)
        # [≡-η1]/[≡-η2]: probe the λ body and the other side's application
        # at a shared fresh variable, free on both sides of the chain.
        probe = Var(fresh("eta"))
        if left_lam:
            return [(subst1(left.body, left.name, probe), App(right, probe), ctx_l, ctx_r, scope)]
        return [(App(left, probe), subst1(right.body, right.name, probe), ctx_l, ctx_r, scope)]


_RULES = _CCRules()

#: Irreducible leaves: comparisons between them are O(1) in the engine, so
#: the memo round-trip would cost more than just deciding.
_LEAF = (Star, Box, Bool, BoolLit, Nat, Zero)


def equivalent(ctx: Context, left: Term, right: Term, budget: Budget | None = None) -> bool:
    """Decide ``Γ ⊢ left ≡ right``."""
    if budget is None:
        budget = Budget()
    if left is right:  # pointer hit: the engine would conclude the same in O(1)
        return True
    if isinstance(left, _LEAF) and isinstance(right, _LEAF):
        return convert(_RULES, ctx, ctx, left, right, budget)
    cache = judgment_cache()
    token = context_token(ctx)
    hit = cache.lookup("cc.equiv", left, right, token)
    if hit is not None:
        verdict, steps = hit
        budget.charge(steps)
        return verdict
    before = budget.spent
    verdict = convert(_RULES, ctx, ctx, left, right, budget)
    cache.store("cc.equiv", left, right, token, verdict, budget.spent - before)
    return verdict


def norm_equal_eta(left: Term, right: Term) -> bool:
    """α-compare two *normal forms* up to η for functions.

    Compatibility wrapper over the incremental engine: on normal forms the
    lazy whnf passes are no-ops and the walk degenerates to the old
    α-with-η comparison.
    """
    empty = Context.empty()
    return convert(_RULES, empty, empty, left, right, Budget())
