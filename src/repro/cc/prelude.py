"""A small standard library of CC terms used throughout the reproduction.

Everything here is a *closed* CC term built from the paper's calculus:
the ``False`` proposition (Section 4.1), Leibniz equality, Church
encodings, the polymorphic identity function from Section 3, and helpers
for refinement-style Σ types (the paper's ``Σ x:Nat. x > 0`` example).
"""

from __future__ import annotations

from repro.cc.ast import (
    App,
    Bool,
    BoolLit,
    Lam,
    Nat,
    NatElim,
    Pair,
    Pi,
    Sigma,
    Star,
    Succ,
    Term,
    Var,
    Zero,
    arrow,
    make_app,
    nat_literal,
)

__all__ = [
    "FALSE",
    "add_zero_right_proof",
    "add_zero_right_theorem",
    "TRUE_PROP",
    "church_add",
    "church_nat",
    "church_nat_type",
    "compose",
    "const_fn",
    "identity_at",
    "leibniz_eq",
    "leibniz_refl",
    "nat_add",
    "nat_is_zero",
    "nat_pred",
    "polymorphic_identity",
    "polymorphic_identity_type",
    "positive_nat",
    "positive_nat_value",
    "twice",
]

# --------------------------------------------------------------------------
# Logic.
# --------------------------------------------------------------------------

#: ``False ≜ Π A:⋆. A`` — the empty proposition (paper Section 4.1).
FALSE: Term = Pi("A", Star(), Var("A"))

#: ``True ≜ Π A:⋆. A → A`` — trivially inhabited by the polymorphic identity.
TRUE_PROP: Term = Pi("A", Star(), arrow(Var("A"), Var("A")))


def leibniz_eq(type_: Term, left: Term, right: Term) -> Term:
    """Leibniz equality ``left =_{type_} right``.

    ``Eq A x y ≜ Π P:(A → ⋆). P x → P y`` — the impredicative encoding
    available in CC without inductive types.
    """
    return Pi("P", arrow(type_, Star()), arrow(App(Var("P"), left), App(Var("P"), right)))


def leibniz_refl(type_: Term, value: Term) -> Term:
    """The reflexivity proof ``λ P. λ p. p : Eq type_ value value``."""
    return Lam(
        "P",
        arrow(type_, Star()),
        Lam("p", App(Var("P"), value), Var("p")),
    )


# --------------------------------------------------------------------------
# Functions (Section 3's running examples).
# --------------------------------------------------------------------------

#: ``λ A:⋆. λ x:A. x : Π A:⋆. Π x:A. A`` — the paper's polymorphic identity,
#: the canonical example whose *inner* closure captures a type variable.
polymorphic_identity: Term = Lam("A", Star(), Lam("x", Var("A"), Var("x")))

polymorphic_identity_type: Term = Pi("A", Star(), Pi("x", Var("A"), Var("A")))


def identity_at(type_: Term) -> Term:
    """The monomorphic identity ``λ x:type_. x``."""
    return Lam("x", type_, Var("x"))


def const_fn(type_a: Term, type_b: Term) -> Term:
    """``λ x:A. λ y:B. x`` — its inner λ captures the term variable ``x``."""
    return Lam("x", type_a, Lam("y", type_b, Var("x")))


def compose(type_a: Term, type_b: Term, type_c: Term) -> Term:
    """``λ f:(B→C). λ g:(A→B). λ x:A. f (g x)``."""
    return Lam(
        "f",
        arrow(type_b, type_c),
        Lam(
            "g",
            arrow(type_a, type_b),
            Lam("x", type_a, App(Var("f"), App(Var("g"), Var("x")))),
        ),
    )


def twice(type_: Term) -> Term:
    """``λ f:(A→A). λ x:A. f (f x)``."""
    return Lam(
        "f",
        arrow(type_, type_),
        Lam("x", type_, App(Var("f"), App(Var("f"), Var("x")))),
    )


# --------------------------------------------------------------------------
# Church numerals (used to stress normalization and the compiler).
# --------------------------------------------------------------------------

#: ``CNat ≜ Π A:⋆. (A → A) → A → A`` — impredicative Church naturals.
church_nat_type: Term = Pi(
    "A", Star(), arrow(arrow(Var("A"), Var("A")), arrow(Var("A"), Var("A")))
)


def church_nat(value: int) -> Term:
    """The Church numeral ``λ A. λ f. λ x. f^value x``."""
    body: Term = Var("x")
    for _ in range(value):
        body = App(Var("f"), body)
    return Lam(
        "A",
        Star(),
        Lam("f", arrow(Var("A"), Var("A")), Lam("x", Var("A"), body)),
    )


#: Addition on Church numerals.
church_add: Term = Lam(
    "m",
    church_nat_type,
    Lam(
        "n",
        church_nat_type,
        Lam(
            "A",
            Star(),
            Lam(
                "f",
                arrow(Var("A"), Var("A")),
                Lam(
                    "x",
                    Var("A"),
                    make_app(
                        Var("m"),
                        Var("A"),
                        Var("f"),
                        make_app(Var("n"), Var("A"), Var("f"), Var("x")),
                    ),
                ),
            ),
        ),
    ),
)


# --------------------------------------------------------------------------
# Ground-type (Nat) arithmetic via the primitive eliminator.
# --------------------------------------------------------------------------

#: ``add ≜ λ m. λ n. natelim(λ_.Nat, n, λ_. λ ih. succ ih, m)``.
nat_add: Term = Lam(
    "m",
    Nat(),
    Lam(
        "n",
        Nat(),
        NatElim(
            Lam("_", Nat(), Nat()),
            Var("n"),
            Lam("k", Nat(), Lam("ih", Nat(), Succ(Var("ih")))),
            Var("m"),
        ),
    ),
)

#: Predecessor (0 ↦ 0) via the eliminator.
nat_pred: Term = Lam(
    "m",
    Nat(),
    NatElim(
        Lam("_", Nat(), Nat()),
        Zero(),
        Lam("k", Nat(), Lam("ih", Nat(), Var("k"))),
        Var("m"),
    ),
)

#: ``is_zero : Nat → Bool``.
nat_is_zero: Term = Lam(
    "m",
    Nat(),
    NatElim(
        Lam("_", Nat(), Bool()),
        BoolLit(True),
        Lam("k", Nat(), Lam("ih", Bool(), BoolLit(False))),
        Var("m"),
    ),
)


def add_zero_right_theorem() -> Term:
    """The statement ``Π m:Nat. add m 0 = m`` (Leibniz equality).

    A genuine universally quantified theorem about the prelude's ``add``;
    see :func:`add_zero_right_proof`.
    """
    return Pi(
        "m",
        Nat(),
        leibniz_eq(
            Nat(), make_app(nat_add, Var("m"), Zero()), Var("m")
        ),
    )


def add_zero_right_proof() -> Term:
    """A proof of :func:`add_zero_right_theorem`, by induction on ``m``.

    * base: ``add 0 0 ⊲* 0``, so ``refl`` at ``0`` proves the case via
      [Conv];
    * step: given ``ih : add k 0 = k``, instantiate it at the predicate
      ``λ m. P (succ m)`` — since ``add (succ k) 0 ⊲ succ (add k 0)``,
      that transports ``P (add (succ k) 0)`` to ``P (succ k)``.

    This is the paper's abstract made concrete: a *proof of functional
    correctness* that the closure-conversion pipeline preserves into the
    target (see ``examples/verified_arithmetic.py``).
    """

    def add_m_zero(m: Term) -> Term:
        return make_app(nat_add, m, Zero())

    motive = Lam("n", Nat(), leibniz_eq(Nat(), add_m_zero(Var("n")), Var("n")))
    base = leibniz_refl(Nat(), Zero())
    step = Lam(
        "k",
        Nat(),
        Lam(
            "ih",
            leibniz_eq(Nat(), add_m_zero(Var("k")), Var("k")),
            Lam(
                "P",
                arrow(Nat(), Star()),
                Lam(
                    "p",
                    App(Var("P"), add_m_zero(Succ(Var("k")))),
                    make_app(
                        Var("ih"),
                        Lam("m", Nat(), App(Var("P"), Succ(Var("m")))),
                        Var("p"),
                    ),
                ),
            ),
        ),
    )
    return Lam("m", Nat(), NatElim(motive, base, step, Var("m")))


def positive_nat() -> Term:
    """The refinement type ``Σ x:Nat. is_zero x = false``.

    This stands in for the paper's ``Σ x:Nat. x > 0`` example (Section 2):
    a pair of a number with evidence of positivity, here expressed as a
    Leibniz equation over the ground type ``Bool``.
    """
    return Sigma(
        "x",
        Nat(),
        leibniz_eq(Bool(), App(nat_is_zero, Var("x")), BoolLit(False)),
    )


def positive_nat_value(value: int) -> Term:
    """A canonical inhabitant ``⟨value, refl⟩`` of :func:`positive_nat`."""
    if value <= 0:
        raise ValueError("positive_nat_value requires value > 0")
    literal = nat_literal(value)
    return Pair(
        literal,
        leibniz_refl(Bool(), BoolLit(False)),
        positive_nat(),
    )
