"""Abstract syntax of CC, the source calculus (paper Figure 1).

CC is the Calculus of Constructions extended with strong dependent pairs
(Σ-types), dependent ``let`` with context definitions, and η-equivalence for
functions, as in Bowman & Ahmed (PLDI 2018) Section 2.  Following the
paper's Section 5.2 we also add *ground types* — here ``Bool`` and ``Nat``
with their eliminators — so that separate-compilation correctness has
observable results and the examples are non-trivial.

Terms, types and kinds share one syntactic category (full-spectrum dependent
types).  The grammar implemented here is::

    U      ::= ⋆ | □
    e,A,B  ::= x | ⋆ | let x = e : A in e | Π x:A. B | λ x:A. e | e e
             | Σ x:A. B | ⟨e1, e2⟩ as Σ x:A. B | fst e | snd e
             | Bool | true | false | if e then e else e
             | Nat | zero | succ e | natelim(P, z, s, n)

All nodes are immutable; sharing subterms is always safe.  Binding is by
*name*: ``Pi``, ``Lam``, ``Sigma`` and ``Let`` each bind their ``name`` in
the fields documented below.  Capture-avoiding substitution lives in
:mod:`repro.cc.subst`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.kernel import fv as _kernel_fv  # noqa: F401 (submodule import)
from repro.kernel import traverse as _kernel_traverse
from repro.kernel.intern import build as _kernel_build
from repro.kernel.intern import intern as _kernel_intern_fn
from repro.kernel.nodespec import Language

__all__ = [
    "App",
    "Bool",
    "BoolLit",
    "Box",
    "Fst",
    "If",
    "LANGUAGE",
    "Lam",
    "Let",
    "Nat",
    "NatElim",
    "Pair",
    "Pi",
    "Sigma",
    "Snd",
    "Star",
    "Succ",
    "Term",
    "Var",
    "Zero",
    "app_spine",
    "arrow",
    "cached_free_vars",
    "free_vars",
    "hashcons",
    "intern",
    "make_app",
    "nat_literal",
    "nat_value",
    "subterms",
    "term_size",
]


class Term:
    """Base class of all CC expressions.

    Subclasses are frozen dataclasses; structural ``==`` is *syntactic*
    equality (names matter).  Use :func:`repro.cc.subst.alpha_equal` for
    α-equivalence and :func:`repro.cc.equiv.equivalent` for definitional
    equivalence.

    The ``__weakref__`` slot lets the shared kernel keep identity-keyed
    weak caches (free variables, interned representatives) over terms.
    """

    __slots__ = ("__weakref__",)

    def __str__(self) -> str:
        from repro.cc.pretty import pretty

        return pretty(self)


@dataclass(frozen=True, slots=True)
class Var(Term):
    """A variable occurrence ``x``."""

    name: str


@dataclass(frozen=True, slots=True)
class Star(Term):
    """The impredicative universe ``⋆`` of small types."""


@dataclass(frozen=True, slots=True)
class Box(Term):
    """The predicative universe ``□`` of large types.

    ``□`` is the type of ``⋆`` and of large Π/Σ types.  It has no type
    itself and is not a valid annotation in user programs; the type checker
    rejects any attempt to classify it (paper Section 2).
    """


@dataclass(frozen=True, slots=True)
class Pi(Term):
    """Dependent function type ``Π name:domain. codomain``.

    ``name`` is bound in ``codomain`` only.
    """

    name: str
    domain: Term
    codomain: Term


@dataclass(frozen=True, slots=True)
class Lam(Term):
    """Function ``λ name:domain. body``; ``name`` is bound in ``body``."""

    name: str
    domain: Term
    body: Term


@dataclass(frozen=True, slots=True)
class App(Term):
    """Application ``fn arg``."""

    fn: Term
    arg: Term


@dataclass(frozen=True, slots=True)
class Let(Term):
    """Dependent let ``let name = bound : annot in body``.

    ``name`` is bound in ``body`` and carries a *definition*: inside
    ``body`` the variable δ-reduces to ``bound`` (paper Figure 2).
    """

    name: str
    bound: Term
    annot: Term
    body: Term


@dataclass(frozen=True, slots=True)
class Sigma(Term):
    """Strong dependent pair type ``Σ name:first. second``.

    ``name`` is bound in ``second`` only.
    """

    name: str
    first: Term
    second: Term


@dataclass(frozen=True, slots=True)
class Pair(Term):
    """Dependent pair ``⟨fst_val, snd_val⟩ as annot``.

    The annotation is required (paper Figure 1): the Σ-type of a pair is not
    inferable because ``snd_val``'s type underdetermines the binder.  The
    annotation must reduce to a :class:`Sigma`.
    """

    fst_val: Term
    snd_val: Term
    annot: Term


@dataclass(frozen=True, slots=True)
class Fst(Term):
    """First projection ``fst pair``."""

    pair: Term


@dataclass(frozen=True, slots=True)
class Snd(Term):
    """Second projection ``snd pair``."""

    pair: Term


# --------------------------------------------------------------------------
# Ground types (paper Section 5.2: "adding ground types, such as Bool").
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Bool(Term):
    """The ground type of booleans; an observation type for Theorem 5.7."""


@dataclass(frozen=True, slots=True)
class BoolLit(Term):
    """``true`` or ``false``."""

    value: bool


@dataclass(frozen=True, slots=True)
class If(Term):
    """Non-dependent conditional ``if cond then then_branch else else_branch``.

    Both branches must have equivalent types; this is all the paper's
    ground-type observations require.
    """

    cond: Term
    then_branch: Term
    else_branch: Term


@dataclass(frozen=True, slots=True)
class Nat(Term):
    """The ground type of natural numbers."""


@dataclass(frozen=True, slots=True)
class Zero(Term):
    """The numeral ``zero``."""


@dataclass(frozen=True, slots=True)
class Succ(Term):
    """Successor ``succ pred``."""

    pred: Term


@dataclass(frozen=True, slots=True)
class NatElim(Term):
    """Dependent eliminator for ``Nat``.

    ``natelim(motive, base, step, target) : motive target`` where::

        motive : Π _:Nat. U
        base   : motive zero
        step   : Π n:Nat. Π ih:(motive n). motive (succ n)
        target : Nat

    Reduction (ι)::

        natelim(P, z, s, zero)    ⊲ z
        natelim(P, z, s, succ n)  ⊲ s n (natelim(P, z, s, n))

    The eliminator is primitive recursion, so CC + Nat remains strongly
    normalizing.
    """

    motive: Term
    base: Term
    step: Term
    target: Term


# --------------------------------------------------------------------------
# Construction helpers.
# --------------------------------------------------------------------------

_UNUSED = "_"


def arrow(domain: Term, codomain: Term) -> Pi:
    """Non-dependent function type ``domain → codomain`` (sugar, Section 2)."""
    return Pi(_UNUSED, domain, codomain)


def make_app(fn: Term, *args: Term) -> Term:
    """Left-nested application ``fn arg0 arg1 …``."""
    result = fn
    for arg in args:
        result = App(result, arg)
    return result


def app_spine(term: Term) -> tuple[Term, list[Term]]:
    """Decompose left-nested applications into ``(head, [args…])``."""
    args: list[Term] = []
    while isinstance(term, App):
        args.append(term.arg)
        term = term.fn
    args.reverse()
    return term, args


def nat_literal(value: int) -> Term:
    """Build the numeral ``succ^value zero``."""
    if value < 0:
        raise ValueError(f"nat_literal of negative value {value}")
    result: Term = Zero()
    for _ in range(value):
        result = Succ(result)
    return result


def nat_value(term: Term) -> int | None:
    """Inverse of :func:`nat_literal`; ``None`` if ``term`` is not a numeral."""
    count = 0
    while isinstance(term, Succ):
        count += 1
        term = term.pred
    if isinstance(term, Zero):
        return count
    return None


# --------------------------------------------------------------------------
# Generic traversal.
# --------------------------------------------------------------------------

#: A binder entry: (bound name or None, subterm).  ``None`` means the
#: subterm is *not* under the node's binder (e.g. a Pi's domain).
Child = tuple[Union[str, None], Term]


def children(term: Term) -> list[Child]:
    """The immediate subterms of ``term``, tagged with binding information.

    For each ``(name, sub)`` pair, ``name`` is the variable the parent binds
    *in that subterm* (``None`` when the subterm is outside the binder's
    scope).  Derived from the kernel node specs registered below, so the
    binding structure has a single source of truth.
    """
    spec = LANGUAGE.spec(term)
    return [
        (getattr(term, child.binders[0]) if child.binders else None, getattr(term, child.attr))
        for child in spec.children
    ]


# --------------------------------------------------------------------------
# Kernel registration: binding structure of every node, used by the shared
# engines for free variables, substitution, α-equivalence, traversal, and
# hash-consing (see repro.kernel).
# --------------------------------------------------------------------------

LANGUAGE = Language("cc", Term, Var)
LANGUAGE.node(Var, data=("name",))
LANGUAGE.node(Star)
LANGUAGE.node(Box)
LANGUAGE.node(Pi, binders=("name",), scopes={"codomain": 1})
LANGUAGE.node(Lam, binders=("name",), scopes={"body": 1})
LANGUAGE.node(App)
LANGUAGE.node(Let, binders=("name",), scopes={"body": 1})
LANGUAGE.node(Sigma, binders=("name",), scopes={"second": 1})
LANGUAGE.node(Pair)
LANGUAGE.node(Fst)
LANGUAGE.node(Snd)
LANGUAGE.node(Bool)
LANGUAGE.node(BoolLit, data=("value",))
LANGUAGE.node(If)
LANGUAGE.node(Nat)
LANGUAGE.node(Zero)
LANGUAGE.node(Succ)
LANGUAGE.node(NatElim)


def free_vars(term: Term) -> set[str]:
    """The set of free variable names of ``term`` (a fresh, mutable copy).

    Computed once per node and cached by identity in the kernel; prefer
    :func:`cached_free_vars` when a shared immutable set suffices.
    """
    return set(_kernel_fv.free_vars(LANGUAGE, term))


def cached_free_vars(term: Term) -> frozenset[str]:
    """The kernel's cached free-variable set for ``term`` (shared, frozen)."""
    return _kernel_fv.free_vars(LANGUAGE, term)


def intern(term: Term) -> Term:
    """The canonical (hash-consed) representative of ``term``'s α-class.

    ``intern(a) is intern(b)`` exactly when ``a`` and ``b`` are α-equivalent.
    """
    return _kernel_intern_fn(LANGUAGE, term)


def hashcons(cls: type, *args) -> Term:
    """Hash-consing constructor: ``cls(*args)`` interned by structure."""
    return _kernel_build(LANGUAGE, cls, *args)


def subterms(term: Term) -> Iterator[Term]:
    """Pre-order iterator over ``term`` and all of its subterms (iterative)."""
    return _kernel_traverse.subterms(LANGUAGE, term)


def term_size(term: Term) -> int:
    """Number of AST nodes in ``term`` (a proxy for program size)."""
    return _kernel_traverse.term_size(LANGUAGE, term)
