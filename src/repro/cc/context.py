"""Typing environments Γ for CC (paper Figures 1 and 4).

The implementation is the language-agnostic telescope from
:mod:`repro.common.telescope`; this module fixes the intended reading for
CC: entries are ``x : A`` assumptions and ``x = e : A`` definitions over
:class:`repro.cc.ast.Term`.
"""

from repro.common.telescope import Binding, Context

__all__ = ["Binding", "Context"]
