"""Capture-avoiding substitution and α-equivalence for CC terms.

Substitution is *parallel*: a mapping from names to replacement terms is
applied simultaneously.  Binders whose bound name would capture a free
variable of a replacement (or shadow a mapped name in a way that matters)
are renamed on the fly using the global fresh-name supply.

The actual engine lives in the shared kernel
(:mod:`repro.kernel.substitution`, :mod:`repro.kernel.alpha`), driven by
the node specs registered in :mod:`repro.cc.ast`; free-variable scans come
from the kernel's identity-keyed cache instead of a per-call traversal.
"""

from __future__ import annotations

from repro.cc.ast import LANGUAGE, Term, Var
from repro.kernel import alpha as _kernel_alpha
from repro.kernel import substitution as _kernel_subst

__all__ = ["alpha_equal", "rename", "subst", "subst1"]

Substitution = dict[str, Term]


def subst1(term: Term, name: str, replacement: Term) -> Term:
    """Substitute ``replacement`` for free occurrences of ``name`` in ``term``.

    This is the paper's ``e[e'/x]``.
    """
    return _kernel_subst.subst(LANGUAGE, term, {name: replacement})


def rename(term: Term, old: str, new: str) -> Term:
    """Rename free occurrences of ``old`` to ``new`` (capture-avoiding)."""
    return _kernel_subst.subst(LANGUAGE, term, {old: Var(new)})


def subst(term: Term, mapping: Substitution) -> Term:
    """Apply the parallel substitution ``mapping`` to ``term``.

    Names not in ``mapping`` are untouched.  The result shares unmodified
    subterms with the input where possible.
    """
    return _kernel_subst.subst(LANGUAGE, term, mapping)


def alpha_equal(left: Term, right: Term) -> bool:
    """Structural equality of ``left`` and ``right`` up to bound names."""
    return _kernel_alpha.alpha_equal(LANGUAGE, left, right)
