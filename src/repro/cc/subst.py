"""Capture-avoiding substitution and α-equivalence for CC terms.

Substitution is *parallel*: a mapping from names to replacement terms is
applied simultaneously.  Binders whose bound name would capture a free
variable of a replacement (or shadow a mapped name in a way that matters)
are renamed on the fly using the global fresh-name supply.
"""

from __future__ import annotations

from repro.cc.ast import (
    App,
    Bool,
    BoolLit,
    Box,
    Fst,
    If,
    Lam,
    Let,
    Nat,
    NatElim,
    Pair,
    Pi,
    Sigma,
    Snd,
    Star,
    Succ,
    Term,
    Var,
    Zero,
    free_vars,
)
from repro.common.names import fresh

__all__ = ["alpha_equal", "rename", "subst", "subst1"]

Substitution = dict[str, Term]


def subst1(term: Term, name: str, replacement: Term) -> Term:
    """Substitute ``replacement`` for free occurrences of ``name`` in ``term``.

    This is the paper's ``e[e'/x]``.
    """
    return subst(term, {name: replacement})


def rename(term: Term, old: str, new: str) -> Term:
    """Rename free occurrences of ``old`` to ``new`` (capture-avoiding)."""
    return subst(term, {old: Var(new)})


def subst(term: Term, mapping: Substitution) -> Term:
    """Apply the parallel substitution ``mapping`` to ``term``.

    Names not in ``mapping`` are untouched.  The result shares unmodified
    subterms with the input where possible.
    """
    if not mapping:
        return term
    relevant = {k: v for k, v in mapping.items() if k in free_vars(term)}
    if not relevant:
        return term
    capturable: set[str] = set()
    for value in relevant.values():
        capturable |= free_vars(value)
    return _subst(term, relevant, capturable)


def _under_binder(
    name: str, body: Term, mapping: Substitution, capturable: set[str]
) -> tuple[str, Term, Substitution]:
    """Prepare to substitute inside ``body`` where ``name`` is bound.

    Drops the bound name from the mapping (it is shadowed) and renames the
    binder if it would capture a free variable of some replacement.
    """
    inner = {k: v for k, v in mapping.items() if k != name}
    if not inner:
        return name, body, inner
    if name in capturable:
        renamed = fresh(name)
        body = subst(body, {name: Var(renamed)})
        return renamed, body, inner
    return name, body, inner


def _subst(term: Term, mapping: Substitution, capturable: set[str]) -> Term:
    match term:
        case Var(name):
            return mapping.get(name, term)
        case Star() | Box() | Bool() | BoolLit() | Nat() | Zero():
            return term
        case Pi(name, domain, codomain):
            new_domain = _subst(domain, mapping, capturable)
            name, codomain, inner = _under_binder(name, codomain, mapping, capturable)
            new_codomain = _subst(codomain, inner, capturable) if inner else codomain
            return Pi(name, new_domain, new_codomain)
        case Lam(name, domain, body):
            new_domain = _subst(domain, mapping, capturable)
            name, body, inner = _under_binder(name, body, mapping, capturable)
            new_body = _subst(body, inner, capturable) if inner else body
            return Lam(name, new_domain, new_body)
        case App(fn, arg):
            return App(_subst(fn, mapping, capturable), _subst(arg, mapping, capturable))
        case Let(name, bound, annot, body):
            new_bound = _subst(bound, mapping, capturable)
            new_annot = _subst(annot, mapping, capturable)
            name, body, inner = _under_binder(name, body, mapping, capturable)
            new_body = _subst(body, inner, capturable) if inner else body
            return Let(name, new_bound, new_annot, new_body)
        case Sigma(name, first, second):
            new_first = _subst(first, mapping, capturable)
            name, second, inner = _under_binder(name, second, mapping, capturable)
            new_second = _subst(second, inner, capturable) if inner else second
            return Sigma(name, new_first, new_second)
        case Pair(fst_val, snd_val, annot):
            return Pair(
                _subst(fst_val, mapping, capturable),
                _subst(snd_val, mapping, capturable),
                _subst(annot, mapping, capturable),
            )
        case Fst(pair):
            return Fst(_subst(pair, mapping, capturable))
        case Snd(pair):
            return Snd(_subst(pair, mapping, capturable))
        case If(cond, then_branch, else_branch):
            return If(
                _subst(cond, mapping, capturable),
                _subst(then_branch, mapping, capturable),
                _subst(else_branch, mapping, capturable),
            )
        case Succ(pred):
            return Succ(_subst(pred, mapping, capturable))
        case NatElim(motive, base, step, target):
            return NatElim(
                _subst(motive, mapping, capturable),
                _subst(base, mapping, capturable),
                _subst(step, mapping, capturable),
                _subst(target, mapping, capturable),
            )
        case _:
            raise TypeError(f"not a CC term: {term!r}")


# --------------------------------------------------------------------------
# α-equivalence.
# --------------------------------------------------------------------------


def alpha_equal(left: Term, right: Term) -> bool:
    """Structural equality of ``left`` and ``right`` up to bound names."""
    return _alpha(left, right, {}, {}, [0])


def _alpha(
    left: Term,
    right: Term,
    env_l: dict[str, int],
    env_r: dict[str, int],
    counter: list[int],
) -> bool:
    match left, right:
        case Var(a), Var(b):
            la, lb = env_l.get(a), env_r.get(b)
            if la is None and lb is None:
                return a == b
            return la is not None and la == lb
        case (Star(), Star()) | (Box(), Box()) | (Bool(), Bool()) | (Nat(), Nat()) | (
            Zero(),
            Zero(),
        ):
            return True
        case BoolLit(a), BoolLit(b):
            return a == b
        case Pi(n1, d1, c1), Pi(n2, d2, c2):
            return _alpha(d1, d2, env_l, env_r, counter) and _alpha_binder(
                n1, c1, n2, c2, env_l, env_r, counter
            )
        case Lam(n1, d1, b1), Lam(n2, d2, b2):
            return _alpha(d1, d2, env_l, env_r, counter) and _alpha_binder(
                n1, b1, n2, b2, env_l, env_r, counter
            )
        case App(f1, a1), App(f2, a2):
            return _alpha(f1, f2, env_l, env_r, counter) and _alpha(a1, a2, env_l, env_r, counter)
        case Let(n1, e1, t1, b1), Let(n2, e2, t2, b2):
            return (
                _alpha(e1, e2, env_l, env_r, counter)
                and _alpha(t1, t2, env_l, env_r, counter)
                and _alpha_binder(n1, b1, n2, b2, env_l, env_r, counter)
            )
        case Sigma(n1, f1, s1), Sigma(n2, f2, s2):
            return _alpha(f1, f2, env_l, env_r, counter) and _alpha_binder(
                n1, s1, n2, s2, env_l, env_r, counter
            )
        case Pair(f1, s1, t1), Pair(f2, s2, t2):
            return (
                _alpha(f1, f2, env_l, env_r, counter)
                and _alpha(s1, s2, env_l, env_r, counter)
                and _alpha(t1, t2, env_l, env_r, counter)
            )
        case Fst(p1), Fst(p2):
            return _alpha(p1, p2, env_l, env_r, counter)
        case Snd(p1), Snd(p2):
            return _alpha(p1, p2, env_l, env_r, counter)
        case If(c1, t1, e1), If(c2, t2, e2):
            return (
                _alpha(c1, c2, env_l, env_r, counter)
                and _alpha(t1, t2, env_l, env_r, counter)
                and _alpha(e1, e2, env_l, env_r, counter)
            )
        case Succ(p1), Succ(p2):
            return _alpha(p1, p2, env_l, env_r, counter)
        case NatElim(m1, z1, s1, t1), NatElim(m2, z2, s2, t2):
            return (
                _alpha(m1, m2, env_l, env_r, counter)
                and _alpha(z1, z2, env_l, env_r, counter)
                and _alpha(s1, s2, env_l, env_r, counter)
                and _alpha(t1, t2, env_l, env_r, counter)
            )
        case _:
            return False


def _alpha_binder(
    name_l: str,
    body_l: Term,
    name_r: str,
    body_r: Term,
    env_l: dict[str, int],
    env_r: dict[str, int],
    counter: list[int],
) -> bool:
    index = counter[0]
    counter[0] += 1
    new_l = dict(env_l)
    new_r = dict(env_r)
    new_l[name_l] = index
    new_r[name_r] = index
    result = _alpha(body_l, body_r, new_l, new_r, counter)
    counter[0] -= 1
    return result
