"""Reduction and normalization for CC (paper Figure 2).

The one-step relation ``Γ ⊢ e ⊲ e′`` has five axioms:

* δ — a variable with a definition in Γ unfolds to its definition,
* ζ — ``let x = e : A in b ⊲ b[e/x]``,
* β — ``(λ x:A. b) a ⊲ b[a/x]``,
* π1/π2 — projections from a literal pair,

plus, for the ground types of Section 5.2, the ι-rules for ``if`` and
``natelim``.  ``⊲*`` is the reflexive-transitive *contextual* closure.

This module provides:

* :func:`head_reducts` / :func:`reducts` — the one-step relation, for
  metatheory properties quantifying over ``e ⊲ e′``;
* :func:`whnf` — weak-head normal form (what the type checker needs to
  expose Π/Σ/``Code`` heads);
* :func:`normalize` — full β-normal form (CC is strongly normalizing, so
  this terminates; a fuel budget guards against pathological blowup).
"""

from __future__ import annotations

from repro.cc.ast import (
    App,
    Bool,
    BoolLit,
    Box,
    Fst,
    If,
    Lam,
    Let,
    Nat,
    NatElim,
    Pair,
    Pi,
    Sigma,
    Snd,
    Star,
    Succ,
    Term,
    Var,
    Zero,
    make_app,
)
from repro.cc.context import Context
from repro.cc.subst import subst1
from repro.kernel.budget import DEFAULT_FUEL, Budget
from repro.kernel.memo import NORMALIZATION_CACHE, context_token

__all__ = [
    "DEFAULT_FUEL",
    "Budget",
    "head_reducts",
    "normalize",
    "normalize_counting",
    "reduces_to",
    "reducts",
    "whnf",
]

#: Node classes a whnf step can act on; anything else is already weak-head
#: normal, so whnf returns it without touching the memo cache.  MUST list
#: exactly the head classes matched by the `_whnf` loop below — a class
#: with a reduction arm missing here would be returned unreduced
#: (tests/test_kernel.py guards this with a no-reducts-in-normal-forms check).
_WHNF_ACTIVE = (Var, Let, App, Fst, Snd, If, NatElim)


def whnf(ctx: Context, term: Term, budget: Budget | None = None) -> Term:
    """Reduce ``term`` to weak-head normal form under ``ctx``.

    Only the head position is reduced; arguments, pair components, binder
    bodies, etc. are left untouched.  Results are memoized per (term
    identity, context definitions); hits replay the originally recorded
    fuel cost, so budgets behave exactly as if the reduction had re-run.
    """
    if budget is None:
        budget = Budget()
    if isinstance(term, Var):
        # Fast path for the overwhelmingly common case: a neutral variable
        # needs one context probe, not a memo round-trip.
        binding = ctx.lookup(term.name)
        if binding is None or binding.definition is None:
            return term
    elif not isinstance(term, _WHNF_ACTIVE):
        return term
    token = context_token(ctx)
    hit = NORMALIZATION_CACHE.lookup("cc.whnf", term, token)
    if hit is not None:
        result, steps = hit
        budget.charge(steps)
        return result
    before = budget.spent
    result = _whnf(ctx, term, budget)
    NORMALIZATION_CACHE.store("cc.whnf", term, token, result, budget.spent - before)
    return result


def _whnf(ctx: Context, term: Term, budget: Budget) -> Term:
    while True:
        match term:
            case Var(name):
                binding = ctx.lookup(name)
                if binding is not None and binding.definition is not None:
                    budget.spend()
                    term = binding.definition
                    continue
                return term
            case Let(name, bound, _annot, body):
                budget.spend()
                term = subst1(body, name, bound)
                continue
            case App(fn, arg):
                fn_whnf = whnf(ctx, fn, budget)
                if isinstance(fn_whnf, Lam):
                    budget.spend()
                    term = subst1(fn_whnf.body, fn_whnf.name, arg)
                    continue
                return term if fn_whnf is fn else App(fn_whnf, arg)
            case Fst(pair):
                pair_whnf = whnf(ctx, pair, budget)
                if isinstance(pair_whnf, Pair):
                    budget.spend()
                    term = pair_whnf.fst_val
                    continue
                return term if pair_whnf is pair else Fst(pair_whnf)
            case Snd(pair):
                pair_whnf = whnf(ctx, pair, budget)
                if isinstance(pair_whnf, Pair):
                    budget.spend()
                    term = pair_whnf.snd_val
                    continue
                return term if pair_whnf is pair else Snd(pair_whnf)
            case If(cond, then_branch, else_branch):
                cond_whnf = whnf(ctx, cond, budget)
                if isinstance(cond_whnf, BoolLit):
                    budget.spend()
                    term = then_branch if cond_whnf.value else else_branch
                    continue
                return term if cond_whnf is cond else If(cond_whnf, then_branch, else_branch)
            case NatElim(motive, base, step, target):
                target_whnf = whnf(ctx, target, budget)
                if isinstance(target_whnf, Zero):
                    budget.spend()
                    term = base
                    continue
                if isinstance(target_whnf, Succ):
                    budget.spend()
                    pred = target_whnf.pred
                    term = make_app(step, pred, NatElim(motive, base, step, pred))
                    continue
                if target_whnf is target:
                    return term
                return NatElim(motive, base, step, target_whnf)
            case _:
                return term


#: Leaf classes whose normal form is always themselves (no children, no δ):
#: caching these would only churn the memo table.
_NF_TRIVIAL = (Star, Box, Bool, BoolLit, Nat, Zero)


def normalize(ctx: Context, term: Term, budget: Budget | None = None) -> Term:
    """Fully normalize ``term`` under ``ctx``.

    The result contains no δ/ζ/β/π/ι redexes (``let`` disappears entirely:
    normal forms are ``let``-free).  Bound variables shadow any definitions
    of the same name in ``ctx``, which the recursion tracks by extending the
    context at each binder.  Like :func:`whnf`, results are memoized per
    (term identity, context definitions) with fuel replay on hits.
    """
    if budget is None:
        budget = Budget()
    if isinstance(term, _NF_TRIVIAL):
        return term
    if isinstance(term, Var):
        binding = ctx.lookup(term.name)
        if binding is None or binding.definition is None:
            return term
    token = context_token(ctx)
    hit = NORMALIZATION_CACHE.lookup("cc.nf", term, token)
    if hit is not None:
        result, steps = hit
        budget.charge(steps)
        return result
    before = budget.spent
    result = _normalize(ctx, term, budget)
    NORMALIZATION_CACHE.store("cc.nf", term, token, result, budget.spent - before)
    return result


def _normalize(ctx: Context, term: Term, budget: Budget) -> Term:
    term = whnf(ctx, term, budget)
    match term:
        case Pi(name, domain, codomain):
            inner = ctx.extend(name, domain)
            return Pi(name, normalize(ctx, domain, budget), normalize(inner, codomain, budget))
        case Lam(name, domain, body):
            inner = ctx.extend(name, domain)
            return Lam(name, normalize(ctx, domain, budget), normalize(inner, body, budget))
        case Sigma(name, first, second):
            inner = ctx.extend(name, first)
            return Sigma(name, normalize(ctx, first, budget), normalize(inner, second, budget))
        case App(fn, arg):
            return App(normalize(ctx, fn, budget), normalize(ctx, arg, budget))
        case Pair(fst_val, snd_val, annot):
            return Pair(
                normalize(ctx, fst_val, budget),
                normalize(ctx, snd_val, budget),
                normalize(ctx, annot, budget),
            )
        case Fst(pair):
            return Fst(normalize(ctx, pair, budget))
        case Snd(pair):
            return Snd(normalize(ctx, pair, budget))
        case If(cond, then_branch, else_branch):
            return If(
                normalize(ctx, cond, budget),
                normalize(ctx, then_branch, budget),
                normalize(ctx, else_branch, budget),
            )
        case Succ(pred):
            return Succ(normalize(ctx, pred, budget))
        case NatElim(motive, base, step, target):
            return NatElim(
                normalize(ctx, motive, budget),
                normalize(ctx, base, budget),
                normalize(ctx, step, budget),
                normalize(ctx, target, budget),
            )
        case _:
            return term


def normalize_counting(ctx: Context, term: Term, fuel: int = DEFAULT_FUEL) -> tuple[Term, int]:
    """Normalize and also report how many reduction steps were taken.

    Benchmarks use the step count as a machine-independent cost measure when
    comparing evaluation before and after compilation (Corollary 5.8).
    """
    budget = Budget(remaining=fuel)
    result = normalize(ctx, term, budget)
    return result, budget.spent


# --------------------------------------------------------------------------
# The one-step relation, explicitly.
# --------------------------------------------------------------------------


def head_reducts(ctx: Context, term: Term) -> list[Term]:
    """All results of applying a reduction *axiom* at the root of ``term``.

    Purely syntactic except for δ, which consults ``ctx`` for definitions.
    At most one axiom ever applies per node, so the list has length ≤ 1; a
    list keeps the signature uniform with :func:`reducts`.
    """
    match term:
        case Var(name):
            binding = ctx.lookup(name)
            if binding is not None and binding.definition is not None:
                return [binding.definition]
            return []
        case Let(name, bound, _annot, body):
            return [subst1(body, name, bound)]
        case App(Lam(name, _domain, body), arg):
            return [subst1(body, name, arg)]
        case Fst(Pair(fst_val, _snd_val, _annot)):
            return [fst_val]
        case Snd(Pair(_fst_val, snd_val, _annot)):
            return [snd_val]
        case If(BoolLit(value), then_branch, else_branch):
            return [then_branch if value else else_branch]
        case NatElim(_motive, base, _step, Zero()):
            return [base]
        case NatElim(motive, base, step, Succ(pred)):
            return [make_app(step, pred, NatElim(motive, base, step, pred))]
        case _:
            return []


def reducts(ctx: Context, term: Term) -> list[Term]:
    """All one-step reducts of ``term`` (contextual closure of the axioms).

    This enumerates the full relation ``Γ ⊢ e ⊲ e′``, which the metatheory
    properties (preservation of reduction, subject reduction) quantify over.
    """
    results = list(head_reducts(ctx, term))
    match term:
        case Pi(name, domain, codomain):
            results += [Pi(name, d, codomain) for d in reducts(ctx, domain)]
            inner = ctx.extend(name, domain)
            results += [Pi(name, domain, c) for c in reducts(inner, codomain)]
        case Lam(name, domain, body):
            results += [Lam(name, d, body) for d in reducts(ctx, domain)]
            inner = ctx.extend(name, domain)
            results += [Lam(name, domain, b) for b in reducts(inner, body)]
        case App(fn, arg):
            results += [App(f, arg) for f in reducts(ctx, fn)]
            results += [App(fn, a) for a in reducts(ctx, arg)]
        case Let(name, bound, annot, body):
            results += [Let(name, b, annot, body) for b in reducts(ctx, bound)]
            results += [Let(name, bound, a, body) for a in reducts(ctx, annot)]
            inner = ctx.define(name, bound, annot)
            results += [Let(name, bound, annot, b) for b in reducts(inner, body)]
        case Sigma(name, first, second):
            results += [Sigma(name, f, second) for f in reducts(ctx, first)]
            inner = ctx.extend(name, first)
            results += [Sigma(name, first, s) for s in reducts(inner, second)]
        case Pair(fst_val, snd_val, annot):
            results += [Pair(f, snd_val, annot) for f in reducts(ctx, fst_val)]
            results += [Pair(fst_val, s, annot) for s in reducts(ctx, snd_val)]
            results += [Pair(fst_val, snd_val, a) for a in reducts(ctx, annot)]
        case Fst(pair):
            results += [Fst(p) for p in reducts(ctx, pair)]
        case Snd(pair):
            results += [Snd(p) for p in reducts(ctx, pair)]
        case If(cond, then_branch, else_branch):
            results += [If(c, then_branch, else_branch) for c in reducts(ctx, cond)]
            results += [If(cond, t, else_branch) for t in reducts(ctx, then_branch)]
            results += [If(cond, then_branch, e) for e in reducts(ctx, else_branch)]
        case Succ(pred):
            results += [Succ(p) for p in reducts(ctx, pred)]
        case NatElim(motive, base, step, target):
            results += [NatElim(m, base, step, target) for m in reducts(ctx, motive)]
            results += [NatElim(motive, b, step, target) for b in reducts(ctx, base)]
            results += [NatElim(motive, base, s, target) for s in reducts(ctx, step)]
            results += [NatElim(motive, base, step, t) for t in reducts(ctx, target)]
        case _:
            pass
    return results


def reduces_to(ctx: Context, source: Term, target: Term, max_steps: int = 1000) -> bool:
    """Decide ``Γ ⊢ source ⊲* target`` by bounded breadth-first search.

    Only used in tests over small terms; real equivalence checking goes
    through :func:`repro.cc.equiv.equivalent`.
    """
    from repro.cc.subst import alpha_equal

    seen: list[Term] = [source]
    frontier = [source]
    steps = 0
    while frontier and steps < max_steps:
        new_frontier: list[Term] = []
        for candidate in frontier:
            if alpha_equal(candidate, target):
                return True
            for reduct in reducts(ctx, candidate):
                steps += 1
                if not any(alpha_equal(reduct, old) for old in seen):
                    seen.append(reduct)
                    new_frontier.append(reduct)
        frontier = new_frontier
    return any(alpha_equal(candidate, target) for candidate in frontier)
