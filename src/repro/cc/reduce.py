"""Reduction and normalization for CC (paper Figure 2).

The one-step relation ``Γ ⊢ e ⊲ e′`` has five axioms:

* δ — a variable with a definition in Γ unfolds to its definition,
* ζ — ``let x = e : A in b ⊲ b[e/x]``,
* β — ``(λ x:A. b) a ⊲ b[a/x]``,
* π1/π2 — projections from a literal pair,

plus, for the ground types of Section 5.2, the ι-rules for ``if`` and
``natelim``.  ``⊲*`` is the reflexive-transitive *contextual* closure.

This module provides:

* :func:`head_reducts` / :func:`reducts` — the one-step relation, for
  metatheory properties quantifying over ``e ⊲ e′``;
* :func:`whnf` — weak-head normal form (what the type checker needs to
  expose Π/Σ/``Code`` heads);
* :func:`normalize` — full β-normal form (CC is strongly normalizing, so
  this terminates; a fuel budget guards against pathological blowup).

Two engines implement the same relation:

* **NbE** (:mod:`repro.kernel.nbe`) — the default behind :func:`whnf` and
  :func:`normalize`: an iterative environment machine with memoizing
  thunks, so cold normalization never pays substitution's tree rewriting.
* **Substitution** — the original engine, kept verbatim as
  :func:`whnf_subst`/:func:`normalize_subst`.  It is the *oracle* the NbE
  results are differentially tested against
  (``tests/test_nbe_differential.py``), and it remains the **counting
  path**: :func:`normalize_counting` reports its per-occurrence step
  semantics, byte-identical to every previous release.  The two engines
  memoize under distinct cache kinds and never share entries.
"""

from __future__ import annotations

from repro.cc.ast import (
    LANGUAGE,
    App,
    Bool,
    BoolLit,
    Box,
    Fst,
    If,
    Lam,
    Let,
    Nat,
    NatElim,
    Pair,
    Pi,
    Sigma,
    Snd,
    Star,
    Succ,
    Term,
    Var,
    Zero,
    make_app,
)
from repro.cc.context import Context
from repro.cc.subst import subst1
from repro.kernel.budget import DEFAULT_FUEL, Budget
from repro.kernel.memo import head_is_weak_normal, memoized_reduction, normalization_cache
from repro.kernel.nbe import NbeSpec, nbe_normalize, nbe_whnf

__all__ = [
    "DEFAULT_FUEL",
    "Budget",
    "head_reducts",
    "normalize",
    "normalize_counting",
    "normalize_subst",
    "reduces_to",
    "reducts",
    "whnf",
    "whnf_subst",
]

#: Node classes a whnf step can act on; anything else is already weak-head
#: normal, so whnf returns it without touching the memo cache.  MUST list
#: exactly the head classes matched by the `_whnf` loop below — a class
#: with a reduction arm missing here would be returned unreduced
#: (tests/test_kernel.py guards this with a no-reducts-in-normal-forms check).
_WHNF_ACTIVE = (Var, Let, App, Fst, Snd, If, NatElim)


#: Leaf classes whose normal form is always themselves (no children, no δ):
#: caching these would only churn the memo table.
_NF_TRIVIAL = (Star, Box, Bool, BoolLit, Nat, Zero)

#: The NbE wiring for CC: β applies a literal λ.
_NBE = NbeSpec(
    lang=LANGUAGE,
    var_cls=Var,
    let_cls=Let,
    app_cls=App,
    fst_cls=Fst,
    snd_cls=Snd,
    pair_cls=Pair,
    if_cls=If,
    boollit_cls=BoolLit,
    natelim_cls=NatElim,
    zero_cls=Zero,
    succ_cls=Succ,
    trivial=_NF_TRIVIAL,
    lam_cls=Lam,
)


def _whnf_head_normal(ctx: Context, term: Term) -> bool:
    return head_is_weak_normal(ctx, term, Var, _WHNF_ACTIVE)


def _nbe_whnf_compute(ctx: Context, term: Term, budget: Budget) -> Term:
    return nbe_whnf(_NBE, ctx, term, budget)


def whnf(ctx: Context, term: Term, budget: Budget | None = None) -> Term:
    """Reduce ``term`` to weak-head normal form under ``ctx`` (NbE engine).

    Only the head position is reduced; arguments, pair components, binder
    bodies, etc. are left untouched.  Results are memoized per (term
    identity, context definitions); hits replay the originally recorded
    fuel cost, so budgets behave exactly as if the reduction had re-run.
    """
    if budget is None:
        budget = Budget()
    if _whnf_head_normal(ctx, term):
        return term
    return memoized_reduction(ctx, term, budget, "cc.whnf", _nbe_whnf_compute)


def whnf_subst(ctx: Context, term: Term, budget: Budget | None = None) -> Term:
    """:func:`whnf` on the substitution engine (the differential oracle).

    Memoized under its own cache kind so the two engines never exchange
    results or recorded fuel.
    """
    if budget is None:
        budget = Budget()
    if _whnf_head_normal(ctx, term):
        return term
    return memoized_reduction(ctx, term, budget, "cc.whnf.subst", _whnf)


def _whnf(ctx: Context, term: Term, budget: Budget) -> Term:
    while True:
        match term:
            case Var(name):
                binding = ctx.lookup(name)
                if binding is not None and binding.definition is not None:
                    budget.spend()
                    term = binding.definition
                    continue
                return term
            case Let(name, bound, _annot, body):
                budget.spend()
                term = subst1(body, name, bound)
                continue
            case App(fn, arg):
                fn_whnf = whnf_subst(ctx, fn, budget)
                if isinstance(fn_whnf, Lam):
                    budget.spend()
                    term = subst1(fn_whnf.body, fn_whnf.name, arg)
                    continue
                return term if fn_whnf is fn else App(fn_whnf, arg)
            case Fst(pair):
                pair_whnf = whnf_subst(ctx, pair, budget)
                if isinstance(pair_whnf, Pair):
                    budget.spend()
                    term = pair_whnf.fst_val
                    continue
                return term if pair_whnf is pair else Fst(pair_whnf)
            case Snd(pair):
                pair_whnf = whnf_subst(ctx, pair, budget)
                if isinstance(pair_whnf, Pair):
                    budget.spend()
                    term = pair_whnf.snd_val
                    continue
                return term if pair_whnf is pair else Snd(pair_whnf)
            case If(cond, then_branch, else_branch):
                cond_whnf = whnf_subst(ctx, cond, budget)
                if isinstance(cond_whnf, BoolLit):
                    budget.spend()
                    term = then_branch if cond_whnf.value else else_branch
                    continue
                return term if cond_whnf is cond else If(cond_whnf, then_branch, else_branch)
            case NatElim(motive, base, step, target):
                target_whnf = whnf_subst(ctx, target, budget)
                if isinstance(target_whnf, Zero):
                    budget.spend()
                    term = base
                    continue
                if isinstance(target_whnf, Succ):
                    budget.spend()
                    pred = target_whnf.pred
                    term = make_app(step, pred, NatElim(motive, base, step, pred))
                    continue
                if target_whnf is target:
                    return term
                return NatElim(motive, base, step, target_whnf)
            case _:
                return term


def normalize(ctx: Context, term: Term, budget: Budget | None = None) -> Term:
    """Fully normalize ``term`` under ``ctx`` (NbE engine).

    The result contains no δ/ζ/β/π/ι redexes (``let`` disappears entirely:
    normal forms are ``let``-free).  Bound variables shadow any definitions
    of the same name in ``ctx``; binder names are preserved unless re-using
    one would capture, in which case a fresh name is drawn (exactly when
    the substitution engine would α-rename).  Environment-independent
    subcomputations are memoized per (term identity, context definitions)
    with fuel replay on hits.
    """
    if budget is None:
        budget = Budget()
    if isinstance(term, _NF_TRIVIAL):
        return term
    if isinstance(term, Var):
        binding = ctx.lookup(term.name)
        if binding is None or binding.definition is None:
            return term
    return nbe_normalize(_NBE, ctx, term, budget, normalization_cache(), "cc.nf")


def normalize_subst(ctx: Context, term: Term, budget: Budget | None = None) -> Term:
    """:func:`normalize` on the substitution engine (the counting oracle).

    Kept verbatim from the pre-NbE kernel: step accounting (one unit per
    contraction *per occurrence*, replayed on memo hits) is byte-identical
    to previous releases, which is what :func:`normalize_counting` reports.
    """
    if budget is None:
        budget = Budget()
    if isinstance(term, _NF_TRIVIAL):
        return term
    if isinstance(term, Var):
        binding = ctx.lookup(term.name)
        if binding is None or binding.definition is None:
            return term
    return memoized_reduction(ctx, term, budget, "cc.nf.subst", _normalize)


def _normalize(ctx: Context, term: Term, budget: Budget) -> Term:
    term = whnf_subst(ctx, term, budget)
    match term:
        case Pi(name, domain, codomain):
            inner = ctx.extend(name, domain)
            return Pi(name, normalize_subst(ctx, domain, budget), normalize_subst(inner, codomain, budget))
        case Lam(name, domain, body):
            inner = ctx.extend(name, domain)
            return Lam(name, normalize_subst(ctx, domain, budget), normalize_subst(inner, body, budget))
        case Sigma(name, first, second):
            inner = ctx.extend(name, first)
            return Sigma(name, normalize_subst(ctx, first, budget), normalize_subst(inner, second, budget))
        case App(fn, arg):
            return App(normalize_subst(ctx, fn, budget), normalize_subst(ctx, arg, budget))
        case Pair(fst_val, snd_val, annot):
            return Pair(
                normalize_subst(ctx, fst_val, budget),
                normalize_subst(ctx, snd_val, budget),
                normalize_subst(ctx, annot, budget),
            )
        case Fst(pair):
            return Fst(normalize_subst(ctx, pair, budget))
        case Snd(pair):
            return Snd(normalize_subst(ctx, pair, budget))
        case If(cond, then_branch, else_branch):
            return If(
                normalize_subst(ctx, cond, budget),
                normalize_subst(ctx, then_branch, budget),
                normalize_subst(ctx, else_branch, budget),
            )
        case Succ(pred):
            return Succ(normalize_subst(ctx, pred, budget))
        case NatElim(motive, base, step, target):
            return NatElim(
                normalize_subst(ctx, motive, budget),
                normalize_subst(ctx, base, budget),
                normalize_subst(ctx, step, budget),
                normalize_subst(ctx, target, budget),
            )
        case _:
            return term


def normalize_counting(ctx: Context, term: Term, fuel: int = DEFAULT_FUEL) -> tuple[Term, int]:
    """Normalize and also report how many reduction steps were taken.

    Benchmarks use the step count as a machine-independent cost measure when
    comparing evaluation before and after compilation (Corollary 5.8).
    """
    budget = Budget(remaining=fuel)
    result = normalize_subst(ctx, term, budget)
    return result, budget.spent


# --------------------------------------------------------------------------
# The one-step relation, explicitly.
# --------------------------------------------------------------------------


def head_reducts(ctx: Context, term: Term) -> list[Term]:
    """All results of applying a reduction *axiom* at the root of ``term``.

    Purely syntactic except for δ, which consults ``ctx`` for definitions.
    At most one axiom ever applies per node, so the list has length ≤ 1; a
    list keeps the signature uniform with :func:`reducts`.
    """
    match term:
        case Var(name):
            binding = ctx.lookup(name)
            if binding is not None and binding.definition is not None:
                return [binding.definition]
            return []
        case Let(name, bound, _annot, body):
            return [subst1(body, name, bound)]
        case App(Lam(name, _domain, body), arg):
            return [subst1(body, name, arg)]
        case Fst(Pair(fst_val, _snd_val, _annot)):
            return [fst_val]
        case Snd(Pair(_fst_val, snd_val, _annot)):
            return [snd_val]
        case If(BoolLit(value), then_branch, else_branch):
            return [then_branch if value else else_branch]
        case NatElim(_motive, base, _step, Zero()):
            return [base]
        case NatElim(motive, base, step, Succ(pred)):
            return [make_app(step, pred, NatElim(motive, base, step, pred))]
        case _:
            return []


def reducts(ctx: Context, term: Term) -> list[Term]:
    """All one-step reducts of ``term`` (contextual closure of the axioms).

    This enumerates the full relation ``Γ ⊢ e ⊲ e′``, which the metatheory
    properties (preservation of reduction, subject reduction) quantify over.
    """
    results = list(head_reducts(ctx, term))
    match term:
        case Pi(name, domain, codomain):
            results += [Pi(name, d, codomain) for d in reducts(ctx, domain)]
            inner = ctx.extend(name, domain)
            results += [Pi(name, domain, c) for c in reducts(inner, codomain)]
        case Lam(name, domain, body):
            results += [Lam(name, d, body) for d in reducts(ctx, domain)]
            inner = ctx.extend(name, domain)
            results += [Lam(name, domain, b) for b in reducts(inner, body)]
        case App(fn, arg):
            results += [App(f, arg) for f in reducts(ctx, fn)]
            results += [App(fn, a) for a in reducts(ctx, arg)]
        case Let(name, bound, annot, body):
            results += [Let(name, b, annot, body) for b in reducts(ctx, bound)]
            results += [Let(name, bound, a, body) for a in reducts(ctx, annot)]
            inner = ctx.define(name, bound, annot)
            results += [Let(name, bound, annot, b) for b in reducts(inner, body)]
        case Sigma(name, first, second):
            results += [Sigma(name, f, second) for f in reducts(ctx, first)]
            inner = ctx.extend(name, first)
            results += [Sigma(name, first, s) for s in reducts(inner, second)]
        case Pair(fst_val, snd_val, annot):
            results += [Pair(f, snd_val, annot) for f in reducts(ctx, fst_val)]
            results += [Pair(fst_val, s, annot) for s in reducts(ctx, snd_val)]
            results += [Pair(fst_val, snd_val, a) for a in reducts(ctx, annot)]
        case Fst(pair):
            results += [Fst(p) for p in reducts(ctx, pair)]
        case Snd(pair):
            results += [Snd(p) for p in reducts(ctx, pair)]
        case If(cond, then_branch, else_branch):
            results += [If(c, then_branch, else_branch) for c in reducts(ctx, cond)]
            results += [If(cond, t, else_branch) for t in reducts(ctx, then_branch)]
            results += [If(cond, then_branch, e) for e in reducts(ctx, else_branch)]
        case Succ(pred):
            results += [Succ(p) for p in reducts(ctx, pred)]
        case NatElim(motive, base, step, target):
            results += [NatElim(m, base, step, target) for m in reducts(ctx, motive)]
            results += [NatElim(motive, b, step, target) for b in reducts(ctx, base)]
            results += [NatElim(motive, base, s, target) for s in reducts(ctx, step)]
            results += [NatElim(motive, base, step, t) for t in reducts(ctx, target)]
        case _:
            pass
    return results


def reduces_to(ctx: Context, source: Term, target: Term, max_steps: int = 1000) -> bool:
    """Decide ``Γ ⊢ source ⊲* target`` by bounded breadth-first search.

    Only used in tests over small terms; real equivalence checking goes
    through :func:`repro.cc.equiv.equivalent`.
    """
    from repro.cc.subst import alpha_equal

    seen: list[Term] = [source]
    frontier = [source]
    steps = 0
    while frontier and steps < max_steps:
        new_frontier: list[Term] = []
        for candidate in frontier:
            if alpha_equal(candidate, target):
                return True
            for reduct in reducts(ctx, candidate):
                steps += 1
                if not any(alpha_equal(reduct, old) for old in seen):
                    seen.append(reduct)
                    new_frontier.append(reduct)
        frontier = new_frontier
    return any(alpha_equal(candidate, target) for candidate in frontier)
