"""Pretty printer for CC terms.

The output mirrors the paper's notation (``Π x:A. B``, ``λ x:A. e``,
``⟨e1, e2⟩``, ``⋆``, ``□``) and round-trips through the surface parser for
the ASCII forms.  Used pervasively in error messages.
"""

from __future__ import annotations

from repro.cc.ast import (
    App,
    Bool,
    BoolLit,
    Box,
    Fst,
    If,
    Lam,
    Let,
    Nat,
    NatElim,
    Pair,
    Pi,
    Sigma,
    Snd,
    Star,
    Succ,
    Term,
    Var,
    Zero,
    cached_free_vars,
    nat_value,
)

__all__ = ["pretty"]

# Precedence levels, loosest to tightest.
_PREC_BINDER = 0  # λ, Π, Σ, let, if
_PREC_ARROW = 1  # non-dependent →
_PREC_APP = 2  # application
_PREC_ATOM = 3  # variables, universes, parenthesized


def pretty(term: Term) -> str:
    """Render ``term`` as human-readable concrete syntax."""
    return _pp(term, _PREC_BINDER)


def _parens(text: str, needed: bool) -> str:
    return f"({text})" if needed else text


def _pp(term: Term, prec: int) -> str:
    match term:
        case Var(name):
            return name
        case Star():
            return "⋆"
        case Box():
            return "□"
        case Bool():
            return "Bool"
        case BoolLit(value):
            return "true" if value else "false"
        case Nat():
            return "Nat"
        case Zero():
            return "0"
        case Succ():
            value = nat_value(term)
            if value is not None:
                return str(value)
            return _parens(f"succ {_pp(term.pred, _PREC_ATOM)}", prec > _PREC_APP)
        case Pi(name, domain, codomain):
            if name == "_" or name not in cached_free_vars(codomain):
                text = f"{_pp(domain, _PREC_APP)} -> {_pp(codomain, _PREC_ARROW)}"
                return _parens(text, prec > _PREC_ARROW)
            text = f"Π ({name} : {_pp(domain, _PREC_BINDER)}). {_pp(codomain, _PREC_BINDER)}"
            return _parens(text, prec > _PREC_BINDER)
        case Lam(name, domain, body):
            text = f"λ ({name} : {_pp(domain, _PREC_BINDER)}). {_pp(body, _PREC_BINDER)}"
            return _parens(text, prec > _PREC_BINDER)
        case App(fn, arg):
            text = f"{_pp(fn, _PREC_APP)} {_pp(arg, _PREC_ATOM)}"
            return _parens(text, prec > _PREC_APP)
        case Let(name, bound, annot, body):
            text = (
                f"let {name} = {_pp(bound, _PREC_BINDER)}"
                f" : {_pp(annot, _PREC_BINDER)} in {_pp(body, _PREC_BINDER)}"
            )
            return _parens(text, prec > _PREC_BINDER)
        case Sigma(name, first, second):
            text = f"Σ ({name} : {_pp(first, _PREC_BINDER)}). {_pp(second, _PREC_BINDER)}"
            return _parens(text, prec > _PREC_BINDER)
        case Pair(fst_val, snd_val, annot):
            return (
                f"⟨{_pp(fst_val, _PREC_BINDER)}, {_pp(snd_val, _PREC_BINDER)}⟩"
                f" as {_pp(annot, _PREC_ATOM)}"
            )
        case Fst(pair):
            return _parens(f"fst {_pp(pair, _PREC_ATOM)}", prec > _PREC_APP)
        case Snd(pair):
            return _parens(f"snd {_pp(pair, _PREC_ATOM)}", prec > _PREC_APP)
        case If(cond, then_branch, else_branch):
            text = (
                f"if {_pp(cond, _PREC_BINDER)} then {_pp(then_branch, _PREC_BINDER)}"
                f" else {_pp(else_branch, _PREC_BINDER)}"
            )
            return _parens(text, prec > _PREC_BINDER)
        case NatElim(motive, base, step, target):
            return (
                f"natelim({_pp(motive, _PREC_BINDER)}, {_pp(base, _PREC_BINDER)},"
                f" {_pp(step, _PREC_BINDER)}, {_pp(target, _PREC_BINDER)})"
            )
        case _:
            raise TypeError(f"not a CC term: {term!r}")
