"""The compile-to-host backend: hoisted machine programs as staged Python.

The layer the paper's closure conversion was building toward: hoisted
CC-CC programs — static code table, flat environments — are translated
once per block into host Python closures (:mod:`repro.backend.compile`),
serialized as content-addressed artifacts cached in the persistent tier
and shared across pool workers (:mod:`repro.backend.artifact`), and run
with cost counters that mirror the abstract machine's exactly
(:mod:`repro.backend.stats`).  ``machine/machine.py`` stays verbatim as
the differential oracle; the differential compares values, error
documents, *and* counters.
"""

from repro.backend.artifact import (
    ARTIFACT_VERSION,
    ArtifactMeta,
    artifact_key,
    decode_artifact,
    encode_artifact,
    load_artifact,
    store_artifact,
)
from repro.backend.compile import CompiledProgram, compile_program
from repro.backend.stats import CompiledStats

__all__ = [
    "ARTIFACT_VERSION",
    "BACKENDS",
    "ArtifactMeta",
    "CompiledProgram",
    "CompiledStats",
    "artifact_key",
    "compile_program",
    "decode_artifact",
    "encode_artifact",
    "load_artifact",
    "store_artifact",
    "validate_backend",
]

#: The execution backends ``Session.run`` accepts.
BACKENDS = ("machine", "compiled")


def validate_backend(backend: str) -> str:
    """``backend`` if it names a run backend, else a ValueError."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}: expected one of {', '.join(BACKENDS)}"
        )
    return backend
