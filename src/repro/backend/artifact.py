"""Serializable compiled-program artifacts: compile once, run everywhere.

A compiled program is a tree of live Python closures and cannot itself
cross a process boundary.  What *can* is the thing it is a pure function
of: the α-canonical hoisted source program plus the compile options — so
that is what an artifact carries, in the same content-addressed binary
encoding :mod:`repro.wire` ships terms in, together with the recorded
check/verify fuel of the cold compile.  Any worker that holds the artifact
reconstitutes the compiled closures with one cheap staging pass, skipping
the expensive half of the pipeline (type checking, closure conversion,
Theorem 5.6 verification, hoisting) entirely.

Artifact layout (all integers LEB128 varints)::

    "RPYC"  artifact-version
    verified flag (1 byte)
    check-steps  verify-steps        -- recorded fuel, replayed on warm hits
    block count
    block*                           -- label, then a wire-encoded CodeLam
    main                             -- wire-encoded term

Artifacts are keyed by **source content**, before any compilation work:
``artifact_key`` hashes the interned CC source term's wire content hash
together with the options that change the output (kernel engine, whether
Theorem 5.6 verification ran) and the artifact version.  Two sessions —
or two pool workers, or two runs separated by a restart — that submit
α-equivalent programs therefore agree on the key byte for byte, which is
what lets the ``artifact`` table of the persistent SQLite tier
(:mod:`repro.wire.persist`) act as a shared compile cache: sealed rows,
seal-or-miss reads, and the recorded fuel replayed so a warm run's result
document — including the position of a fuel-exhaustion error — is
byte-identical to the cold one.

The in-memory half is a per-session dict on the
:class:`~repro.kernel.state.KernelState` (registered as a state cache, so
``clear_caches``/``reset`` empty it like any other): key → live
:class:`CompiledProgram`, so repeated warm runs in one session skip even
the decode+staging pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import blake2b
from typing import Any

from repro import cc, cccc
from repro.backend.compile import CompiledProgram, compile_program
from repro.cc.ast import LANGUAGE as CC_LANGUAGE
from repro.cccc.ast import LANGUAGE as CCCC_LANGUAGE
from repro.common.errors import ReproError, WireDecodeError
from repro.kernel.cache import DictCache
from repro.machine.hoist import Program
from repro.wire.codec import (
    _Reader,
    _write_str,
    _write_varint,
    content_hash,
    decode_term,
    encode_term,
)

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactMeta",
    "artifact_key",
    "decode_artifact",
    "encode_artifact",
    "load_artifact",
    "store_artifact",
]

#: Bumped on any change to the artifact layout or the key preimage: old
#: rows then stop matching instead of decoding wrongly.
ARTIFACT_VERSION = 1

_MAGIC = b"RPYC"
_KEY_SEAL = b"repro-backend-key"


@dataclass(frozen=True)
class ArtifactMeta:
    """The non-program half of an artifact: recorded fuel and verification.

    ``check_steps``/``verify_steps`` are the budgets the cold compile
    spent; a warm hit charges them back into fresh budgets so warm runs
    replay the cold run's fuel trajectory exactly.
    """

    check_steps: int
    verify_steps: int
    verified: bool


def artifact_key(source: cc.Term, *, engine: str, verify: bool) -> bytes:
    """The shared-store key of ``source``'s compiled artifact.

    ``source`` must be the interned CC term (the session-independent
    α-class representative); ``engine`` and ``verify`` are the compile
    options that change the recorded fuel or the verified flag.
    """
    hasher = blake2b(digest_size=24, key=_KEY_SEAL)
    hasher.update(ARTIFACT_VERSION.to_bytes(4, "little"))
    hasher.update(engine.encode("ascii"))
    hasher.update(b"\x01" if verify else b"\x00")
    hasher.update(content_hash(CC_LANGUAGE, source))
    return hasher.digest()


def encode_artifact(program: Program, meta: ArtifactMeta) -> bytes:
    """Encode a hoisted (α-canonical) program plus its compile metadata."""
    out = bytearray(_MAGIC)
    _write_varint(out, ARTIFACT_VERSION)
    out.append(1 if meta.verified else 0)
    _write_varint(out, meta.check_steps)
    _write_varint(out, meta.verify_steps)
    _write_varint(out, len(program.code_table))
    for label, code in program.code_table.items():
        _write_str(out, label)
        blob = encode_term(CCCC_LANGUAGE, code)
        _write_varint(out, len(blob))
        out += blob
    main_blob = encode_term(CCCC_LANGUAGE, program.main)
    _write_varint(out, len(main_blob))
    out += main_blob
    return bytes(out)


def decode_artifact(data: bytes) -> tuple[Program, ArtifactMeta]:
    """Decode an artifact buffer, raising :class:`WireDecodeError` when torn.

    Every embedded term travels through :func:`repro.wire.codec.decode_term`,
    so per-node content hashes reject corruption inside blocks exactly as
    they do on the wire.
    """
    reader = _Reader(data)
    if reader.read(4) != _MAGIC:
        raise WireDecodeError("bad magic: not a compiled-program artifact")
    version = reader.varint()
    if version != ARTIFACT_VERSION:
        raise WireDecodeError(
            f"unsupported artifact version {version} (this build speaks {ARTIFACT_VERSION})"
        )
    flag = reader.read(1)[0]
    if flag > 1:
        raise WireDecodeError(f"malformed verified flag {flag}")
    check_steps = reader.varint()
    verify_steps = reader.varint()
    table: dict[str, cccc.CodeLam] = {}
    for _ in range(reader.varint()):
        label = reader.string()
        if label in table:
            raise WireDecodeError(f"duplicate code label {label!r} in artifact")
        code = decode_term(CCCC_LANGUAGE, reader.read(reader.varint()))
        if not isinstance(code, cccc.CodeLam):
            raise WireDecodeError(f"artifact block {label!r} is not a code literal")
        table[label] = code
    main = decode_term(CCCC_LANGUAGE, reader.read(reader.varint()))
    if not reader.done():
        raise WireDecodeError(
            f"trailing garbage: {len(data) - reader.pos} byte(s) after artifact main"
        )
    return Program(table, main), ArtifactMeta(check_steps, verify_steps, bool(flag))


# -- per-session cache plumbing ----------------------------------------------


def _memory_cache(state: Any) -> dict[bytes, tuple[CompiledProgram, ArtifactMeta]]:
    """The session's key → live compiled program cache (created on demand)."""
    cache = getattr(state, "backend_compiled", None)
    if cache is None:
        cache = {}
        state.backend_compiled = cache
        state.register(DictCache("backend.compiled", cache))
    return cache


def load_artifact(state: Any, key: bytes) -> tuple[CompiledProgram, ArtifactMeta] | None:
    """The cached compiled program for ``key``, or None.

    Memory first; then the persistent tier's ``artifact`` table, staging
    the decoded program back into closures and memoizing the result.  An
    undecodable or uncompilable row is a miss, never an error — the same
    degradation contract as the memo tier.
    """
    cache = _memory_cache(state)
    found = cache.get(key)
    if found is not None:
        return found
    tier = state.persistent
    if tier is None:
        return None
    row = tier.store.get_artifact(key)
    if row is None:
        return None
    _steps, blob = row
    try:
        program, meta = decode_artifact(blob)
        compiled = compile_program(program)
    except ReproError:
        return None
    cache[key] = (compiled, meta)
    return compiled, meta


def store_artifact(
    state: Any, key: bytes, compiled: CompiledProgram, meta: ArtifactMeta
) -> None:
    """Publish a freshly compiled program to every cache tier available."""
    cache = _memory_cache(state)
    cache[key] = (compiled, meta)
    tier = state.persistent
    if tier is not None:
        tier.store.put_artifact(
            key,
            meta.check_steps + meta.verify_steps,
            encode_artifact(compiled.program, meta),
        )
