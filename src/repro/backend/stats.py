"""Cost counters for compiled runs, mirroring :class:`MachineStats`.

The compiled backend's whole claim is that staging changes *where* the
work happens (a closure tree built once per code block, then host-speed
execution), not *how much* work the cost model sees.  Accattoli et al.
("Closure Conversion, Flat Environments, and the Complexity of Abstract
Machines") make the abstract-machine counters — transition steps,
environment allocations, environment width — the unit of account for that
claim, so :class:`CompiledStats` carries exactly the fields of
:class:`repro.machine.machine.MachineStats` and the differential suite
compares them field for field.

Inside a compiled run the counters live in one flat list (indexed by the
``C_*`` constants below) so the staged closures pay a list subscript per
increment instead of an attribute lookup; :meth:`CompiledStats.from_counters`
lifts the list into the structured form when the run completes.

``max_frame_size`` is derived, not counted: the machine updates it with
``len(env)`` on every transition, but every environment it ever enters is
one it allocated (``_frame`` or a ``let`` extension) — except the empty
environment ``main`` starts in — so the running maximum equals
``max_env_size`` whenever any environment was allocated, and ``0``
otherwise.  Deriving it keeps the hot path one update shorter without
changing a single reported number.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.machine.machine import MachineStats

__all__ = [
    "C_CLOSURES",
    "C_ENVS",
    "C_LOOKUPS",
    "C_MAX_ENV",
    "C_PROJECTIONS",
    "C_STEPS",
    "C_TUPLES",
    "COUNTER_SLOTS",
    "CompiledStats",
]

#: Slot indices of the per-run counter list the staged closures mutate.
C_STEPS = 0  # machine transitions (one per node visit + one per β-entry)
C_CLOSURES = 1  # ⟨⟨code, env⟩⟩ objects built
C_TUPLES = 2  # pairs / environment-tuple cells built
C_PROJECTIONS = 3  # fst/snd dereferences
C_LOOKUPS = 4  # static code-table fetches
C_ENVS = 5  # environment frames built (activation records + lets)
C_MAX_ENV = 6  # widest environment ever built
COUNTER_SLOTS = 7


@dataclass(frozen=True)
class CompiledStats:
    """Cost counters for one compiled run — field-compatible with the oracle."""

    steps: int = 0
    closure_allocs: int = 0
    tuple_allocs: int = 0
    projections: int = 0
    code_lookups: int = 0
    max_frame_size: int = 0
    env_allocs: int = 0
    max_env_size: int = 0

    @classmethod
    def from_counters(cls, counters: list[int]) -> "CompiledStats":
        """Lift the flat counter list of one run into the structured form."""
        env_allocs = counters[C_ENVS]
        max_env = counters[C_MAX_ENV]
        return cls(
            steps=counters[C_STEPS],
            closure_allocs=counters[C_CLOSURES],
            tuple_allocs=counters[C_TUPLES],
            projections=counters[C_PROJECTIONS],
            code_lookups=counters[C_LOOKUPS],
            max_frame_size=max_env if env_allocs else 0,
            env_allocs=env_allocs,
            max_env_size=max_env,
        )

    def to_machine(self) -> MachineStats:
        """The same counts as a (mutable) :class:`MachineStats`."""
        return MachineStats(**self.as_dict())

    def as_dict(self) -> dict[str, int]:
        return {entry.name: getattr(self, entry.name) for entry in fields(self)}

    def matches(self, machine: MachineStats) -> bool:
        """Field-for-field agreement with an oracle run's counters."""
        return all(
            getattr(self, entry.name) == getattr(machine, entry.name)
            for entry in fields(self)
        )
