"""Staged compilation of hoisted CC-CC programs to host Python closures.

The paper's closing move is that closure-converted, hoisted code is "one
small step from a real backend": every code block is closed, every
activation record is exactly ⟨environment, argument⟩, so each block can be
translated *once* into a host-native callable and then entered at host
speed, with no term dispatch on the hot path.  This module performs that
translation — the first-Futamura-projection trick of partially evaluating
:mod:`repro.machine.machine`'s ``eval`` loop against a fixed program:

- **Stage one (compile time)**: walk each hoisted code block following the
  same case analysis as the machine and build a tree of Python closures.
  All term dispatch, variable-name resolution (names become tuple slots),
  and error-message formatting happens here, once per block.
- **Stage two (run time)**: call the closure tree.  A staged function has
  the shape ``f(rt, c) -> Value`` where ``rt`` is the flat activation
  tuple (the paper's environment-as-tuple discipline, literally) and ``c``
  is the run's flat counter list (see :mod:`repro.backend.stats`).

The machine stays in the repo **verbatim** as the differential oracle:
compiled runs must produce the same values (machine value classes are
reused, so equality is structural), raise byte-identical
:class:`MachineError` documents, and — per Accattoli et al.'s cost model —
report the *same* step/allocation counters, not merely the same complexity
class.  Every counter increment below is therefore placed to mirror a
specific line of ``_Machine.eval``; comments call out the mirrored
transition.  Pure constructor subtrees are constant-folded at compile
time, but their closures still replay the exact steps the machine would
have charged.

Counter slots (see :mod:`repro.backend.stats`): ``c[0]`` steps, ``c[1]``
closure allocs, ``c[2]`` tuple allocs, ``c[3]`` projections, ``c[4]``
code lookups, ``c[5]`` env allocs, ``c[6]`` max env width.

One representational caveat: :func:`compile_program` α-canonicalizes the
program first (so artifact bytes and content hashes are session- and
name-independent), and canonical binder names are always pairwise
distinct.  A hand-built block whose argument binder *shadows* its
environment binder (``env_name == arg_name``) would give the machine a
one-entry activation record but the compiled form a two-name layout; the
closure-conversion pipeline never emits such blocks (its binders are
machine-generated and distinct), so the counters agree on every program
that can reach this backend through the API.
"""

from __future__ import annotations

import hashlib
import sys
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro import cccc
from repro.cccc.ast import LANGUAGE
from repro.machine.hoist import Program
from repro.machine.machine import (
    _DEEP_STACK_BYTES,
    _DEEP_TERM_THRESHOLD,
    _TYPE_NODES,
    MBool,
    MClo,
    MCode,
    MNat,
    MPair,
    MType,
    MUnit,
    MachineError,
    Value,
)
from repro.backend.stats import COUNTER_SLOTS, CompiledStats
from repro.wire.codec import content_hash

__all__ = [
    "BlockFn",
    "CompiledProgram",
    "StagedFn",
    "compile_program",
]

#: A staged term: flat activation tuple + counter list → value.
StagedFn = Callable[[tuple, list], Value]

#: A staged code block: environment value + argument value + counters → value.
BlockFn = Callable[[Value, Value, list], Value]

_TYPE_TAGS = {cls: cls.__name__ for cls in _TYPE_NODES}


# -- constant folding --------------------------------------------------------


def _fold(term: cccc.Term) -> tuple[Value, int, int] | None:
    """Fold a pure constructor subtree to ``(value, steps, tuple_allocs)``.

    Only subtrees the machine is guaranteed to evaluate without touching
    the environment or raising are folded — literals, type nodes (whose
    children the machine never visits), and pairs/naturals built from
    them.  Anything that could fail at run time (``succ`` of a non-number,
    say) returns ``None`` and is staged structurally so the error, and the
    counters leading up to it, surface exactly as the machine's would.
    """
    tag = _TYPE_TAGS.get(type(term))
    if tag is not None:
        return MType(tag), 1, 0  # one loop-top step; children never evaluated
    if isinstance(term, cccc.Zero):
        return MNat(0), 1, 0
    if isinstance(term, cccc.UnitVal):
        return MUnit(), 1, 0
    if isinstance(term, cccc.BoolLit):
        return MBool(term.value), 1, 0
    if isinstance(term, cccc.Succ):
        # Iterative spine walk: numeric literals arrive as ~10k-deep
        # ``succ`` chains and must not recurse here.
        height = 0
        pred: cccc.Term = term
        while isinstance(pred, cccc.Succ):
            height += 1
            pred = pred.pred
        base = _fold(pred)
        if base is None:
            return None
        value, steps, tuples = base
        if not isinstance(value, MNat):
            return None  # the machine would raise "succ of a non-number"
        return MNat(value.value + height), steps + height, tuples
    if isinstance(term, cccc.Pair):
        first = _fold(term.fst_val)
        if first is None:
            return None
        second = _fold(term.snd_val)
        if second is None:
            return None
        first_value, first_steps, first_tuples = first
        second_value, second_steps, second_tuples = second
        return (
            MPair(first_value, second_value),
            1 + first_steps + second_steps,
            1 + first_tuples + second_tuples,
        )
    return None


# -- staging -----------------------------------------------------------------


def _make_apply(table: dict[str, BlockFn]) -> Callable[[Value, Value, list], Value]:
    """The staged twin of ``_Machine.apply`` (natelim's β-entry)."""

    def apply_value(fn_value: Value, arg_value: Value, c: list) -> Value:
        c[0] += 1  # apply: the β transition step
        c[4] += 1  # lookup_code
        # Only MClo carries ``.code``; the attribute chain doubles as the
        # closure check, and the dict hit as the label check.  A failing
        # run never reports counters, so the eager increments are
        # unobservable on the error paths.
        try:
            block = table[fn_value.code.label]
        except AttributeError:
            raise MachineError(f"application of non-closure {fn_value!r}") from None
        except KeyError:
            raise MachineError(f"unknown code label {fn_value.code.label!r}") from None
        return block(fn_value.env, arg_value, c)

    return apply_value


def _stage(
    term: cccc.Term,
    layout: dict[str, int],
    depth: int,
    table: dict[str, BlockFn],
    code_table: dict[str, cccc.CodeLam],
    apply_value: Callable[[Value, Value, list], Value],
) -> StagedFn:
    """Translate ``term`` into a closure over flat activation tuples.

    ``layout`` maps every in-scope name to its slot in the runtime tuple
    and ``depth`` is the tuple's current length (shadowed slots stay in
    the tuple, dead).  ``len(layout)`` is therefore exactly the machine's
    ``len(env)`` at this program point, which is what makes the env-width
    counters static.
    """
    folded = _fold(term)
    if folded is not None:
        value, steps, tuples = folded
        if tuples:

            def const_tuple(rt: tuple, c: list, _v=value, _s=steps, _t=tuples) -> Value:
                c[0] += _s
                c[2] += _t
                return _v

            return const_tuple

        def const(rt: tuple, c: list, _v=value, _s=steps) -> Value:
            c[0] += _s
            return _v

        return const

    if isinstance(term, cccc.Var):
        name = term.name
        slot = layout.get(name)
        if slot is not None:

            def var(rt: tuple, c: list, _slot=slot) -> Value:
                c[0] += 1
                return rt[_slot]

            return var
        if name in code_table:
            code_value = MCode(name)

            def code_ref(rt: tuple, c: list, _v=code_value) -> Value:
                c[0] += 1
                return _v

            return code_ref
        message = f"unbound variable at runtime: {name!r}"

        def unbound(rt: tuple, c: list, _m=message) -> Value:
            c[0] += 1
            raise MachineError(_m)

        return unbound

    if isinstance(term, cccc.Clo):
        code_f = _stage(term.code, layout, depth, table, code_table, apply_value)
        env_f = _stage(term.env, layout, depth, table, code_table, apply_value)

        def clo(rt: tuple, c: list, _code=code_f, _env=env_f) -> Value:
            c[0] += 1
            code_value = _code(rt, c)
            if code_value.__class__ is not MCode:
                raise MachineError("closure over a non-code value")
            env_value = _env(rt, c)
            c[1] += 1  # closure_allocs
            return MClo(code_value, env_value)

        return clo

    if isinstance(term, cccc.App):
        fn = term.fn
        if (
            isinstance(fn, cccc.Clo)
            and isinstance(fn.code, cccc.Var)
            and fn.code.name not in layout
            and fn.code.name in table
        ):
            # Immediate redex over a statically known block (the shape
            # closure conversion gives every source β-redex): resolve the
            # block at stage time and skip the transient MClo.  The charge
            # is the machine's full trace — App, Clo, code-Var, and β
            # steps, the closure alloc, the code lookup — and evaluation
            # order (environment, then argument) is preserved.
            env_f = _stage(fn.env, layout, depth, table, code_table, apply_value)
            arg_f = _stage(term.arg, layout, depth, table, code_table, apply_value)

            def app_known(
                rt: tuple, c: list, _env=env_f, _arg=arg_f, _block=table[fn.code.name]
            ) -> Value:
                c[0] += 4
                c[1] += 1
                c[4] += 1
                env_value = _env(rt, c)
                return _block(env_value, _arg(rt, c), c)

            return app_known
        fn_f = _stage(term.fn, layout, depth, table, code_table, apply_value)
        arg_f = _stage(term.arg, layout, depth, table, code_table, apply_value)

        def app(rt: tuple, c: list, _fn=fn_f, _arg=arg_f, _table=table) -> Value:
            c[0] += 2  # loop-top step for the App node + the β transition
            c[4] += 1  # lookup_code
            fn_value = _fn(rt, c)
            arg_value = _arg(rt, c)
            # Only MClo carries ``.code``; the attribute chain doubles as
            # the closure check, and the dict hit as the label check.  A
            # failing run never reports counters, so hoisting the β/lookup
            # increments above the child evaluations is unobservable: on
            # every successful path they were charged exactly once anyway.
            try:
                block = _table[fn_value.code.label]
            except AttributeError:
                raise MachineError(f"application of non-closure {fn_value!r}") from None
            except KeyError:
                raise MachineError(f"unknown code label {fn_value.code.label!r}") from None
            return block(fn_value.env, arg_value, c)

        return app

    if isinstance(term, cccc.Let):
        bound_f = _stage(term.bound, layout, depth, table, code_table, apply_value)
        inner_layout = dict(layout)
        inner_layout[term.name] = depth  # shadowing rebinds the name, keeps the slot count
        width = len(inner_layout)
        body_f = _stage(term.body, inner_layout, depth + 1, table, code_table, apply_value)

        def let(rt: tuple, c: list, _bound=bound_f, _body=body_f, _w=width) -> Value:
            c[0] += 1
            bound_value = _bound(rt, c)
            c[5] += 1  # env_allocs: the extended let environment
            if _w > c[6]:
                c[6] = _w
            return _body(rt + (bound_value,), c)

        return let

    if isinstance(term, cccc.Pair):
        fst_f = _stage(term.fst_val, layout, depth, table, code_table, apply_value)
        snd_f = _stage(term.snd_val, layout, depth, table, code_table, apply_value)

        def pair(rt: tuple, c: list, _fst=fst_f, _snd=snd_f) -> Value:
            c[0] += 1
            c[2] += 1  # tuple_allocs, charged before the children as in eval
            return MPair(_fst(rt, c), _snd(rt, c))

        return pair

    if isinstance(term, cccc.Fst):
        pair_f = _stage(term.pair, layout, depth, table, code_table, apply_value)

        def fst(rt: tuple, c: list, _pair=pair_f) -> Value:
            c[0] += 1
            c[3] += 1  # projections
            value = _pair(rt, c)
            if value.__class__ is not MPair:
                raise MachineError("fst of a non-pair")
            return value.first

        return fst

    if isinstance(term, cccc.Snd):
        pair_f = _stage(term.pair, layout, depth, table, code_table, apply_value)

        def snd(rt: tuple, c: list, _pair=pair_f) -> Value:
            c[0] += 1
            c[3] += 1
            value = _pair(rt, c)
            if value.__class__ is not MPair:
                raise MachineError("snd of a non-pair")
            return value.second

        return snd

    if isinstance(term, cccc.If):
        cond_f = _stage(term.cond, layout, depth, table, code_table, apply_value)
        then_f = _stage(term.then_branch, layout, depth, table, code_table, apply_value)
        else_f = _stage(term.else_branch, layout, depth, table, code_table, apply_value)

        def if_(rt: tuple, c: list, _cond=cond_f, _then=then_f, _else=else_f) -> Value:
            c[0] += 1
            cond_value = _cond(rt, c)
            if cond_value.__class__ is not MBool:
                raise MachineError("if on a non-boolean")
            if cond_value.value:
                return _then(rt, c)
            return _else(rt, c)

        return if_

    if isinstance(term, cccc.Succ):
        # Reached only when the predecessor is not a foldable literal.
        pred_f = _stage(term.pred, layout, depth, table, code_table, apply_value)

        def succ(rt: tuple, c: list, _pred=pred_f) -> Value:
            c[0] += 1
            value = _pred(rt, c)
            if value.__class__ is not MNat:
                raise MachineError("succ of a non-number")
            return MNat(value.value + 1)

        return succ

    if isinstance(term, cccc.NatElim):
        # The motive is a type annotation; like the machine, never evaluate it.
        target_f = _stage(term.target, layout, depth, table, code_table, apply_value)
        base_f = _stage(term.base, layout, depth, table, code_table, apply_value)
        step_f = _stage(term.step, layout, depth, table, code_table, apply_value)

        def natelim(
            rt: tuple,
            c: list,
            _target=target_f,
            _base=base_f,
            _step=step_f,
            _apply=apply_value,
        ) -> Value:
            c[0] += 1
            target_value = _target(rt, c)
            if target_value.__class__ is not MNat:
                raise MachineError("natelim of a non-number")
            accumulator = _base(rt, c)
            step_value = _step(rt, c)
            for index in range(target_value.value):
                partial = _apply(step_value, MNat(index), c)
                accumulator = _apply(partial, accumulator, c)
            return accumulator

        return natelim

    if isinstance(term, cccc.CodeLam):

        def codelam(rt: tuple, c: list) -> Value:
            c[0] += 1
            raise MachineError("un-hoisted code literal reached the machine")

        return codelam

    message = f"cannot evaluate {term!r}"

    def stuck(rt: tuple, c: list, _m=message) -> Value:
        c[0] += 1
        raise MachineError(_m)

    return stuck


def _stage_block(
    code: cccc.CodeLam,
    table: dict[str, BlockFn],
    code_table: dict[str, cccc.CodeLam],
    apply_value: Callable[[Value, Value, list], Value],
) -> BlockFn:
    """Translate one code block into ``block(env_value, arg_value, c)``.

    The activation-record bookkeeping of ``_Machine._frame`` lives in the
    block prologue: its width is static (the paper's guarantee that a
    record is exactly ⟨environment, argument⟩), so the allocation counter
    and the width high-water mark cost two list operations per entry.
    """
    layout = {code.env_name: 0, code.arg_name: 1}
    width = len(layout)
    body_f = _stage(code.body, layout, 2, table, code_table, apply_value)

    def block(env_value: Value, arg_value: Value, c: list, _body=body_f, _w=width) -> Value:
        c[5] += 1  # env_allocs: the activation record
        if _w > c[6]:
            c[6] = _w
        return _body((env_value, arg_value), c)

    return block


# -- compiled programs -------------------------------------------------------


def _with_deep_stack(thunk: Callable[[], object], size: int) -> object:
    """Run ``thunk`` on a thread with a deep C stack and raised recursion limit.

    The staged walk recurses over term depth, and a compiled run nests one
    host frame per term level *plus* one per pending β-entry (the machine
    loops where compiled code calls), so the limit here is a little more
    generous than the machine's ``_run_guarded``.
    """
    result: list = []
    failure: list = []

    def worker() -> None:
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, 6 * size + 20_000))
        try:
            result.append(thunk())
        except BaseException as error:  # noqa: BLE001 — re-raised in the caller
            failure.append(error)
        finally:
            sys.setrecursionlimit(limit)

    old_size = threading.stack_size(_DEEP_STACK_BYTES)
    try:
        thread = threading.Thread(target=worker, name="repro-backend-deep")
        thread.start()
        thread.join()
    finally:
        threading.stack_size(old_size)
    if failure:
        raise failure[0]
    return result[0]


def _source_hash(program: Program) -> str:
    """A stable hex digest of the (canonical) source program.

    Built from the same per-term BLAKE2b content hashes :mod:`repro.wire`
    uses, over the labelled code table plus ``main`` — so two sessions
    compiling α-equivalent programs agree on the hash byte for byte.
    """
    digest = hashlib.blake2b(digest_size=16, person=b"repro-py-src")
    for label, code in program.code_table.items():
        digest.update(label.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(content_hash(LANGUAGE, code))
    digest.update(b"\x01")
    digest.update(content_hash(LANGUAGE, program.main))
    return digest.hexdigest()


@dataclass(eq=False)
class CompiledProgram:
    """A hoisted program staged into host closures, ready to run repeatedly.

    ``program`` is the α-canonical form of the source (binders renamed to
    canonical depth-indexed names), ``source_hash`` its content digest —
    the identity the artifact cache and the service layer key on.
    """

    program: Program
    source_hash: str
    size: int
    table: dict[str, BlockFn] = field(repr=False)
    main: StagedFn = field(repr=False)

    @property
    def code_count(self) -> int:
        return len(self.table)

    def execute(self) -> tuple[Value, CompiledStats]:
        """Run the compiled program once, returning (value, counters).

        Each run gets a fresh counter list; deep programs run under the
        same deep-stack guard discipline as the machine oracle.
        """
        counters = [0] * COUNTER_SLOTS
        if self.size > _DEEP_TERM_THRESHOLD:
            value = _with_deep_stack(lambda: self.main((), counters), self.size)
        else:
            value = self.main((), counters)
        return value, CompiledStats.from_counters(counters)


def _counted_block(label: str, block: BlockFn, counts: dict[str, int]) -> BlockFn:
    """Wrap a staged block with a per-label entry counter (profiling mode).

    The counter dict is captured in the closure, so instrumented programs
    are staged fresh per profiled run and never enter the artifact caches;
    the wrapper fires once per block entry — the exact sites where the
    machine's ``lookup_code`` counts, so per-label totals agree with the
    oracle and sum to ``code_lookups``.
    """

    def counted(env_value: Value, arg_value: Value, c: list, _b=block) -> Value:
        counts[label] = counts.get(label, 0) + 1
        return _b(env_value, arg_value, c)

    return counted


def _build(
    program: Program, label_counts: dict[str, int] | None = None
) -> tuple[dict[str, BlockFn], StagedFn]:
    table: dict[str, BlockFn] = {}
    apply_value = _make_apply(table)
    code_table = program.code_table
    for label, code in code_table.items():
        block = _stage_block(code, table, code_table, apply_value)
        if label_counts is not None:
            # Wrap *as inserted*: later blocks' ``app_known`` fast paths
            # capture table entries at stage time, so wrapping afterwards
            # would miss every statically resolved β.
            block = _counted_block(label, block, label_counts)
        table[label] = block
    main = _stage(program.main, {}, 0, table, code_table, apply_value)
    return table, main


def compile_program(
    program: Program, label_counts: dict[str, int] | None = None
) -> CompiledProgram:
    """Stage a hoisted program into a :class:`CompiledProgram`.

    The program is α-canonicalized first so the compiled artifact (and its
    content hash) is independent of the session's gensym history; the
    machine value classes carry no binder names, so canonicalization is
    invisible to runtime results.

    ``label_counts`` (profiling mode) instruments every staged block with
    a per-label entry counter writing into the given dict; instrumented
    programs must not be cached (the counter dict is baked into the
    closures), which the API layer enforces by bypassing the artifact
    caches whenever a profile is active.
    """
    interned = Program(
        {
            label: cccc.intern(code)  # type: ignore[misc]
            for label, code in program.code_table.items()
        },
        cccc.intern(program.main),
    )
    size = cccc.term_size(interned.main) + sum(
        cccc.term_size(code) for code in interned.code_table.values()
    )
    if size > _DEEP_TERM_THRESHOLD:
        table, main = _with_deep_stack(  # type: ignore[misc]
            lambda: _build(interned, label_counts), size
        )
    else:
        table, main = _build(interned, label_counts)
    return CompiledProgram(
        program=interned,
        source_hash=_source_hash(interned),
        size=size,
        table=table,
        main=main,
    )
