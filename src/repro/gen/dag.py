"""Deliberately DAG-shaped workload terms.

The benchmark families in ``benchmarks/workloads.py`` are mostly *spines*:
deep but structurally diverse, so their unfoldings and their DAGs are the
same order of magnitude.  The wire codec and the canonicalize memo are
about the opposite regime — closure-converted dependently typed programs
whose environments and type annotations repeat the same subterms over and
over (the Accattoli et al. observation the ISSUE cites): huge as trees,
tiny as DAGs.  :func:`shared_dag_tower` builds that shape on purpose, and
lives under ``src/`` (not ``benchmarks/``) so the fuzz corpus and the
codec tests can exercise it too.
"""

from __future__ import annotations

from repro import cc

__all__ = ["shared_dag_tower"]


def shared_dag_tower(levels: int = 7, salt: int = 3) -> cc.Term:
    """A closed, well-typed pair tower that is a tree of ~``2^levels`` nodes
    but a DAG of O(``levels``²) unique interned nodes.

    Level 0 is an annotated pair of Nat literals; level ``k+1`` pairs level
    ``k`` with a freshly-annotated copy of it (plus a small literal
    "pepper" so adjacent levels do not collapse into each other), and the
    Σ annotations repeat the previous level's annotation twice.  Every
    subterm therefore appears many times in the unfolding — exactly the
    repeated-annotated-subterm shape closure conversion produces — while
    the interned DAG stays in the hundreds of nodes (binder-depth-indexed
    canonical names split shared subterms per depth, which is why the count
    is quadratic in ``levels``, not linear).

    At the default ``levels=7`` the unfolding is ~10k nodes and the DAG
    ~200.  The term round-trips through the surface printer/parser and
    typechecks in the empty context (each level has type equal to its own
    annotation), so it can ride any job kind.
    """
    annot: cc.Term = cc.Sigma("_", cc.Nat(), cc.Nat())
    term: cc.Term = cc.Pair(cc.nat_literal(salt), cc.nat_literal(salt + 1), annot)
    for level in range(levels):
        pepper = cc.Pair(
            cc.nat_literal(level % (salt + 2)),
            term,
            cc.Sigma("_", cc.Nat(), annot),
        )
        term = cc.Pair(term, pepper, cc.Sigma("_", annot, cc.Sigma("_", cc.Nat(), annot)))
        annot = cc.Sigma("_", annot, cc.Sigma("_", cc.Nat(), annot))
    return term
