"""Type-directed random generation of well-typed CC terms (test substrate)."""

from repro.gen.generator import GenConfig, TermGenerator

__all__ = ["GenConfig", "TermGenerator"]
