"""Type-directed random generation of well-typed CC terms.

The paper's theorems quantify over *all* well-typed terms; our empirical
validation needs a large, diverse, reproducible supply of them.  This
module generates terms in two modes:

* **checking mode** (:meth:`TermGenerator.term`) — given a target type,
  build an inhabitant: introduction forms for Π/Σ/ground types, context
  variables, dependent eliminations (applications, projections), and
  deliberate β/ζ-redex wrappers so the corpus exercises reduction;
* **synthesis mode** (:meth:`TermGenerator.any_term`) — build a random
  type first, then inhabit it.

Every candidate is *verified* with the CC kernel before it is handed to a
test (:meth:`TermGenerator.well_typed_term`), so generator bugs cannot
produce false property-test failures.  Generation is deterministic per
seed, which is how the hypothesis suites shrink failures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import cc
from repro.cc.context import Context
from repro.common.errors import ReproError, TypeCheckError
from repro.common.names import NameSupply

__all__ = ["GenConfig", "TermGenerator"]


@dataclass
class GenConfig:
    """Knobs controlling the shape of generated programs."""

    max_depth: int = 4
    context_size: int = 3
    allow_ground: bool = True  # Bool / Nat leaves
    allow_sigma: bool = True  # Σ types and pairs
    allow_poly: bool = True  # Π A:⋆ quantification (type variables)
    allow_redex: bool = True  # deliberate β/ζ redexes
    allow_definitions: bool = True  # context entries with definitions
    redex_probability: float = 0.25
    let_probability: float = 0.15


class TermGenerator:
    """A deterministic random source of well-typed CC terms."""

    def __init__(self, seed: int, config: GenConfig | None = None):
        self.rng = random.Random(seed)
        self.config = config or GenConfig()
        # A private name supply keeps output deterministic per seed (the
        # global fresh counter depends on execution history).
        self.names = NameSupply(prefix="g")

    # -- types --------------------------------------------------------------

    def type_(self, ctx: Context, depth: int) -> cc.Term:
        """A well-formed *small* type (universe ⋆) under ``ctx``."""
        choices: list[str] = []
        if self.config.allow_ground:
            choices += ["nat", "nat", "bool"]
        type_vars = [b.name for b in ctx if b.type_ == cc.Star()]
        if type_vars:
            choices += ["var", "var"]
        if depth > 0:
            choices += ["pi", "pi"]
            if self.config.allow_sigma:
                choices.append("sigma")
            if self.config.allow_poly:
                choices.append("poly")
        if not choices:
            choices = ["nat"]
        match self.rng.choice(choices):
            case "nat":
                return cc.Nat()
            case "bool":
                return cc.Bool()
            case "var":
                return cc.Var(self.rng.choice(type_vars))
            case "pi":
                name = self.names.fresh("a")
                domain = self.type_(ctx, depth - 1)
                codomain = self.type_(ctx.extend(name, domain), depth - 1)
                return cc.Pi(name, domain, codomain)
            case "sigma":
                name = self.names.fresh("s")
                first = self.type_(ctx, depth - 1)
                second = self.type_(ctx.extend(name, first), depth - 1)
                return cc.Sigma(name, first, second)
            case "poly":
                name = self.names.fresh("T")
                body = self.type_(ctx.extend(name, cc.Star()), depth - 1)
                return cc.Pi(name, cc.Star(), body)
        raise AssertionError("unreachable")

    # -- terms at a type ----------------------------------------------------

    def term(self, ctx: Context, target: cc.Term, depth: int) -> cc.Term | None:
        """An inhabitant of ``target`` under ``ctx``, or None if not found."""
        candidate = self._term(ctx, target, depth)
        if candidate is None:
            return None
        if depth > 0 and self.config.allow_redex:
            if self.rng.random() < self.config.redex_probability:
                candidate = self._wrap_redex(ctx, candidate, depth)
        return candidate

    def _term(self, ctx: Context, target: cc.Term, depth: int) -> cc.Term | None:
        target = cc.whnf(ctx, target)

        strategies = ["intro", "var", "elim"]
        self.rng.shuffle(strategies)
        if depth <= 0:
            strategies = ["var", "intro"]

        for strategy in strategies:
            result: cc.Term | None = None
            if strategy == "var":
                result = self._var_of_type(ctx, target)
            elif strategy == "intro":
                result = self._intro(ctx, target, depth)
            elif strategy == "elim" and depth > 0:
                result = self._elim(ctx, target, depth)
            if result is not None:
                return result
        return None

    def _var_of_type(self, ctx: Context, target: cc.Term) -> cc.Term | None:
        matches = []
        for binding in ctx:
            try:
                if cc.equivalent(ctx, binding.type_, target):
                    matches.append(binding.name)
            except ReproError:
                continue
        if not matches:
            return None
        return cc.Var(self.rng.choice(matches))

    def _intro(self, ctx: Context, target: cc.Term, depth: int) -> cc.Term | None:
        match target:
            case cc.Pi(name, domain, codomain):
                binder = self.names.fresh(name)
                inner = ctx.extend(binder, domain)
                body = self.term(inner, cc.subst1(codomain, name, cc.Var(binder)), depth - 1)
                if body is None:
                    return None
                return cc.Lam(binder, domain, body)
            case cc.Sigma(name, first, second):
                fst_val = self.term(ctx, first, depth - 1)
                if fst_val is None:
                    return None
                snd_val = self.term(ctx, cc.subst1(second, name, fst_val), depth - 1)
                if snd_val is None:
                    return None
                return cc.Pair(fst_val, snd_val, target)
            case cc.Nat():
                roll = self.rng.random()
                if roll < 0.5 or depth <= 0:
                    return cc.nat_literal(self.rng.randrange(4))
                if roll < 0.75:
                    pred = self.term(ctx, cc.Nat(), depth - 1)
                    return None if pred is None else cc.Succ(pred)
                return self._nat_elim(ctx, depth)
            case cc.Bool():
                if self.rng.random() < 0.6 or depth <= 0:
                    return cc.BoolLit(self.rng.random() < 0.5)
                cond = self.term(ctx, cc.Bool(), depth - 1)
                left = self.term(ctx, cc.Bool(), depth - 1)
                right = self.term(ctx, cc.Bool(), depth - 1)
                if None in (cond, left, right):
                    return None
                return cc.If(cond, left, right)
            case cc.Star():
                return self.type_(ctx, min(depth, 2))
            case _:
                return None

    def _nat_elim(self, ctx: Context, depth: int) -> cc.Term | None:
        """A ``natelim`` at the constant-Nat motive (exercises ι-reduction)."""
        base = self.term(ctx, cc.Nat(), depth - 1)
        target = self.term(ctx, cc.Nat(), depth - 1)
        if base is None or target is None:
            return None
        k = self.names.fresh("k")
        ih = self.names.fresh("ih")
        step_body = self.rng.choice([cc.Succ(cc.Var(ih)), cc.Var(ih), cc.Var(k)])
        motive = cc.Lam(self.names.fresh("_"), cc.Nat(), cc.Nat())
        step = cc.Lam(k, cc.Nat(), cc.Lam(ih, cc.Nat(), step_body))
        return cc.NatElim(motive, base, step, target)

    def _elim(self, ctx: Context, target: cc.Term, depth: int) -> cc.Term | None:
        """Inhabit ``target`` by eliminating a context variable."""
        bindings = list(ctx)
        self.rng.shuffle(bindings)
        for binding in bindings:
            head_type = cc.whnf(ctx, binding.type_)
            if isinstance(head_type, cc.Pi):
                arg = self.term(ctx, head_type.domain, depth - 1)
                if arg is None:
                    continue
                result_type = cc.subst1(head_type.codomain, head_type.name, arg)
                try:
                    if cc.equivalent(ctx, result_type, target):
                        return cc.App(cc.Var(binding.name), arg)
                except ReproError:
                    continue
            elif isinstance(head_type, cc.Sigma):
                try:
                    if cc.equivalent(ctx, head_type.first, target):
                        return cc.Fst(cc.Var(binding.name))
                    snd_type = cc.subst1(
                        head_type.second, head_type.name, cc.Fst(cc.Var(binding.name))
                    )
                    if cc.equivalent(ctx, snd_type, target):
                        return cc.Snd(cc.Var(binding.name))
                except ReproError:
                    continue
        return None

    def _wrap_redex(self, ctx: Context, term: cc.Term, depth: int) -> cc.Term:
        """Wrap ``term`` in a type-preserving β- or ζ-redex."""
        helper_type = self.type_(ctx, 1)
        helper = self.term(ctx, helper_type, 1)
        if helper is None:
            return term
        name = self.names.fresh("z")
        if self.rng.random() < 0.5:
            # (λ z:C. term) helper — β-redex; z does not occur in term.
            return cc.App(cc.Lam(name, helper_type, term), helper)
        return cc.Let(name, helper, helper_type, term)

    # -- contexts and whole programs ----------------------------------------

    def context(self, size: int | None = None) -> Context:
        """A well-formed random context (assumptions, type vars, definitions)."""
        if size is None:
            size = self.config.context_size
        ctx = Context.empty()
        for index in range(size):
            roll = self.rng.random()
            if self.config.allow_poly and roll < 0.3:
                ctx = ctx.extend(self.names.fresh("X"), cc.Star())
            elif self.config.allow_definitions and roll < 0.45:
                type_ = self.type_(ctx, 1)
                value = self.term(ctx, type_, 2)
                if value is not None and not cc.free_vars(value):
                    ctx = ctx.define(self.names.fresh("d"), value, type_)
                else:
                    ctx = ctx.extend(self.names.fresh("v"), type_)
            else:
                ctx = ctx.extend(self.names.fresh("v"), self.type_(ctx, 2))
        return ctx

    def any_term(self, ctx: Context, depth: int | None = None) -> cc.Term | None:
        """A term of *some* type: synthesize a type, then inhabit it."""
        if depth is None:
            depth = self.config.max_depth
        if self.rng.random() < 0.1:
            return self.type_(ctx, depth - 1)  # types are terms too
        target = self.type_(ctx, depth - 1)
        return self.term(ctx, target, depth)

    def well_typed_term(
        self, max_attempts: int = 20
    ) -> tuple[Context, cc.Term, cc.Term] | None:
        """A verified (context, term, type) triple, or None after retries.

        The CC kernel re-checks every candidate; anything it rejects is
        discarded, so downstream property tests only ever see genuinely
        well-typed inputs.
        """
        for _ in range(max_attempts):
            ctx = self.context()
            term = self.any_term(ctx)
            if term is None:
                continue
            try:
                type_ = cc.infer(ctx, term)
            except TypeCheckError:
                continue
            return ctx, term, type_
        return None
