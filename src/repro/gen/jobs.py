"""Workload corpora as service job streams.

The generator (:mod:`repro.gen.generator`) supplies well-typed terms under
random *contexts*; the service wire format carries *closed* surface text.
This module bridges the two: :func:`close_over` folds a generated context
into the term itself (assumptions become λ-binders, definitions become
``let``), :func:`job_corpus` renders a verified corpus of closed job
specs, and :func:`build_stream` arranges a corpus into the independent
"component build" shape the scaling benchmarks measure — the classic
discipline where each build starts from a deterministic reset and then
makes repeated (warm) passes over its workload.

Everything here is deterministic per seed: generation runs inside a
throwaway session (so corpus construction never touches the caller's
engine state) and every candidate is round-tripped through the surface
printer/parser and re-checked before it may enter a corpus — a job stream
never contains a program the kernel would reject for reasons the test
didn't intend.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro import cc
from repro.common.errors import ReproError
from repro.gen.generator import GenConfig, TermGenerator
from repro.surface import parse_term, to_surface

__all__ = ["binary_specs", "build_stream", "close_over", "interleave", "job_corpus"]

#: Kind rotation for mixed corpora: normalization-heavy, like real traffic.
_DEFAULT_KINDS = ("normalize", "check", "normalize", "compile", "run")


def interleave(streams: Iterable[Iterable[Any]]) -> list[Any]:
    """Round-robin merge: one element from each stream per round.

    The arrival order a multiplexed service sees when independent clients
    submit concurrently.  Streams of unequal length simply drop out of
    rotation as they drain; no streams → no jobs.
    """
    rows = [list(stream) for stream in streams]
    merged: list[Any] = []
    for index in range(max((len(row) for row in rows), default=0)):
        for row in rows:
            if index < len(row):
                merged.append(row[index])
    return merged


def close_over(ctx: cc.Context, term: cc.Term) -> cc.Term:
    """Fold ``ctx`` into ``term``: assumptions λ-bind, definitions ``let``.

    ``Γ ⊢ e : A`` becomes ``⊢ λ/let Γ. e`` — still well typed, with the
    same redexes inside, but closed and therefore wire-representable.
    """
    closed = term
    for binding in reversed(list(ctx)):
        if binding.is_definition:
            closed = cc.Let(binding.name, binding.definition, binding.type_, closed)
        else:
            closed = cc.Lam(binding.name, binding.type_, closed)
    return closed


def job_corpus(
    seed: int,
    count: int = 6,
    config: GenConfig | None = None,
    kinds: tuple[str, ...] = _DEFAULT_KINDS,
    engine: str | None = None,
    key: str | None = None,
) -> list[dict[str, Any]]:
    """A deterministic corpus of ``count`` verified, closed job specs.

    Kinds rotate through ``kinds``; ``engine`` applies to normalize jobs;
    ``key`` stamps every spec with one affinity key.  Candidates that do
    not survive the close-over → print → parse → re-check round trip are
    discarded (the generator retries), so the corpus is reproducible *and*
    well formed.
    """
    from repro.api import Session

    scratch = Session(name=f"gen-jobs-{seed}")
    specs: list[dict[str, Any]] = []
    with scratch.activate():
        source = TermGenerator(seed, config or GenConfig(max_depth=3, context_size=2))
        attempts = 0
        while len(specs) < count and attempts < count * 30:
            attempts += 1
            triple = source.well_typed_term()
            if triple is None:
                continue
            ctx, term, _type = triple
            try:
                closed = close_over(ctx, term)
                text = to_surface(closed)
                reparsed = parse_term(text)
                cc.infer(cc.Context.empty(), reparsed)
            except ReproError:
                continue
            kind = kinds[len(specs) % len(kinds)]
            spec: dict[str, Any] = {"kind": kind, "program": text}
            if kind == "normalize" and engine is not None:
                spec["engine"] = engine
            if key is not None:
                spec["key"] = key
            specs.append(spec)
    return specs


def binary_specs(
    specs: Iterable[dict[str, Any]], keep_program: bool = False
) -> list[dict[str, Any]]:
    """Re-encode program-carrying job specs onto the binary DAG wire.

    Each ``program`` (surface text) is parsed, interned, and wire-encoded
    once inside a throwaway session; the returned specs speak wire
    version 2 and carry ``term_b64`` (dropping ``program`` unless
    ``keep_program``).  Non-program jobs (reset/sleep/crash) and specs
    already carrying a binary term pass through untouched.  Payloads are
    byte-identical to the text-wire run of the same stream — both wires
    intern to the same α-canonical representative.
    """
    from repro.api import Session
    from repro.service.jobs import PROGRAM_KINDS
    from repro.wire.codec import term_to_b64

    scratch = Session(name="wire-encode")
    encoded: dict[str, str] = {}
    out: list[dict[str, Any]] = []
    with scratch.activate():
        for spec in specs:
            if (
                spec.get("kind") not in PROGRAM_KINDS
                or not spec.get("program")
                or spec.get("term_b64")
            ):
                out.append(dict(spec))
                continue
            text = spec["program"]
            b64 = encoded.get(text)
            if b64 is None:
                b64 = encoded[text] = term_to_b64(
                    cc.ast.LANGUAGE, cc.intern(parse_term(text))
                )
            converted = dict(spec)
            converted["term_b64"] = b64
            converted["wire"] = 2
            if not keep_program:
                converted.pop("program", None)
            out.append(converted)
    return out


def build_stream(
    build: int,
    seed: int,
    iterations: int = 2,
    passes: int = 4,
    corpus: Iterable[dict[str, Any]] | None = None,
    corpus_size: int = 4,
    config: GenConfig | None = None,
    engine: str | None = None,
    kinds: tuple[str, ...] = _DEFAULT_KINDS,
) -> list[dict[str, Any]]:
    """One independent component build, as a job stream.

    The stream opens each of ``iterations`` with a ``reset`` job — the
    deterministic start-of-build discipline — followed by ``passes`` warm
    passes over the build's corpus.  Every job carries the build's affinity
    key, so a sharded pool keeps the whole stream on one worker: its warm
    memo caches keep hitting, and its resets cool exactly one session
    instead of every build's.  Job ids encode (build, iteration, pass,
    index) and are unique across interleaved streams.
    """
    key = f"build-{build}"
    jobs = list(corpus) if corpus is not None else job_corpus(
        seed, count=corpus_size, config=config, kinds=kinds, engine=engine, key=key
    )
    stream: list[dict[str, Any]] = []
    for iteration in range(iterations):
        stream.append({"kind": "reset", "key": key, "id": f"{key}-i{iteration}-reset"})
        for pass_index in range(passes):
            for job_index, spec in enumerate(jobs):
                stamped = dict(spec)
                stamped["key"] = key
                stamped["id"] = f"{key}-i{iteration}-p{pass_index}-{job_index}"
                stream.append(stamped)
    return stream
