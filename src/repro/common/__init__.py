"""Shared infrastructure: fresh-name supply, error hierarchy, pretty-printing.

These utilities are deliberately language-agnostic: both the source calculus
(:mod:`repro.cc`) and the target calculus (:mod:`repro.cccc`) build on them.
"""

from repro.common.errors import (
    ElaborationError,
    LinkError,
    NormalizationDepthExceeded,
    ParseError,
    ReproError,
    TranslationError,
    TypeCheckError,
)
from repro.common.names import NameSupply, base_name, fresh, is_machine_name, reset_fresh_counter

__all__ = [
    "ElaborationError",
    "LinkError",
    "NameSupply",
    "NormalizationDepthExceeded",
    "ParseError",
    "ReproError",
    "TranslationError",
    "TypeCheckError",
    "base_name",
    "fresh",
    "is_machine_name",
    "reset_fresh_counter",
]
