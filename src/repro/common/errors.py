"""Error hierarchy for the whole reproduction.

Every failure mode a user can hit has a dedicated exception type so that
callers (and tests) can distinguish, e.g., a parse error from a genuine
type-preservation failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class ParseError(ReproError):
    """The surface-syntax lexer or parser rejected the input."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = "" if line is None else f" at {line}:{column}"
        super().__init__(f"parse error{location}: {message}")


class ElaborationError(ReproError):
    """The surface syntax was grammatical but could not be elaborated."""


class TypeCheckError(ReproError):
    """A kernel (CC or CC-CC) rejected a term.

    Carries an optional trail of ``notes`` describing the rule under which
    checking failed; the kernels append to it as the error propagates so the
    final message reads like a derivation-shaped stack trace.
    """

    def __init__(self, message: str):
        super().__init__(message)
        self.notes: list[str] = []

    def with_note(self, note: str) -> "TypeCheckError":
        """Attach context and return self (for ``raise err.with_note(...)``)."""
        self.notes.append(note)
        return self

    def __str__(self) -> str:  # pragma: no cover - formatting only
        base = super().__str__()
        if not self.notes:
            return base
        trail = "\n".join(f"  while {note}" for note in self.notes)
        return f"{base}\n{trail}"


class TranslationError(ReproError):
    """A compiler pass (closure conversion, model, baseline) failed."""


class LinkError(ReproError):
    """A closing substitution did not satisfy the component's interface."""


class NormalizationDepthExceeded(ReproError):
    """The normalizer exceeded its fuel.

    Both calculi are strongly normalizing, so in the absence of bugs this can
    only happen for terms whose normal forms are astronomically large; the
    fuel keeps benchmarks and property tests from hanging.
    """


class WireError(ReproError):
    """The binary term codec rejected a request (e.g. an unencodable term)."""


class StoreError(ReproError):
    """The persistent memo store could not be opened or maintained.

    Raised for failures the caller must act on — a missing parent
    directory, a corrupt database header, a read-only filesystem — with
    the store *path* in the message instead of a raw sqlite3 traceback.
    Runtime read/write errors on an already-open store are deliberately
    *not* raised: they are counted, the circuit breaker absorbs them, and
    the session degrades to in-memory memoization.
    """


class WireDecodeError(WireError):
    """A binary term buffer was malformed, truncated, or corrupt.

    The message is a pure function of the buffer (byte offsets and expected
    values, never object addresses), so a rejected buffer produces the same
    deterministic error document on every worker.
    """
