"""The shared iterative pretty-printing driver.

All three printers (``cc.pretty``, ``cccc.pretty``, ``surface.printer``)
render with the same discipline: a per-calculus ``pieces(term, prec)``
function decomposes one node into a flat list of string fragments and
``(subterm, precedence)`` items, and this driver streams them with an
explicit work stack — so ~10k-node-deep terms (which type errors
legitimately surface) print without approaching the Python recursion
limit.  Keeping the driver here means a fix to fragment ordering or
streaming lands in every printer at once.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["render", "succ_chain", "wrap"]


def render(term: Any, pieces: Callable[[Any, int], list], prec: int) -> str:
    """Drive ``pieces`` over ``term`` iteratively and join the fragments."""
    out: list[str] = []
    stack: list = [(term, prec)]
    while stack:
        item = stack.pop()
        if type(item) is str:
            out.append(item)
            continue
        stack.extend(reversed(pieces(item[0], item[1])))
    return "".join(out)


def wrap(pieces: list, needed: bool) -> list:
    """Parenthesize a fragment list when the context's precedence demands."""
    return ["(", *pieces, ")"] if needed else pieces


def succ_chain(term: Any, succ_cls: type) -> tuple[int, Any]:
    """Consume a whole successor chain at once: ``(depth, core)``.

    One scan decides numeral-vs-stuck, keeping deep chains linear to print
    (per-node ``nat_value`` probes would be quadratic).
    """
    depth = 0
    while isinstance(term, succ_cls):
        depth += 1
        term = term.pred
    return depth, term
