"""Globally fresh variable names.

Both calculi use a *named* term representation (matching the paper's
presentation), so capture-avoiding substitution must be able to rename a
binder to a name that cannot collide with anything the user wrote or any
name produced earlier.  We achieve this with a global monotone counter and a
``$`` separator, a character the surface lexer rejects in identifiers.

``x`` freshened once becomes ``x$1``; freshened again it becomes ``x$2`` (the
old suffix is stripped first so names do not grow without bound).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_SEPARATOR = "$"

_counter = itertools.count(1)


def fresh(base: str = "x") -> str:
    """Return a globally fresh name derived from ``base``.

    The result never collides with a surface-syntax identifier (those cannot
    contain ``$``) nor with any previously issued fresh name.
    """
    stem = base_name(base)
    if not stem:
        stem = "x"
    return f"{stem}{_SEPARATOR}{next(_counter)}"


def base_name(name: str) -> str:
    """Strip a fresh suffix, recovering the human-readable stem of a name."""
    index = name.find(_SEPARATOR)
    if index == -1:
        return name
    return name[:index]


def is_machine_name(name: str) -> bool:
    """Return True if ``name`` was produced by :func:`fresh`."""
    return _SEPARATOR in name


def reset_fresh_counter() -> None:
    """Reset the global counter.  Only for tests that need determinism."""
    global _counter
    _counter = itertools.count(1)


@dataclass
class NameSupply:
    """A local, deterministic name supply.

    The global :func:`fresh` is convenient but makes output depend on
    execution history.  Components that must produce *reproducible* names
    (the pretty printer, the hoisting pass) use a ``NameSupply`` seeded at a
    known point instead.
    """

    prefix: str = "v"
    _next: int = 0
    _used: set[str] = field(default_factory=set)

    def fresh(self, base: str | None = None) -> str:
        """Return a name unused by this supply, derived from ``base``."""
        stem = base_name(base) if base else self.prefix
        if not stem:
            stem = self.prefix
        candidate = stem
        while candidate in self._used:
            self._next += 1
            candidate = f"{stem}{self._next}"
        self._used.add(candidate)
        return candidate

    def reserve(self, name: str) -> None:
        """Mark ``name`` as taken so :meth:`fresh` never returns it."""
        self._used.add(name)
