"""Fresh variable names, drawn from the active session's counter.

Both calculi use a *named* term representation (matching the paper's
presentation), so capture-avoiding substitution must be able to rename a
binder to a name that cannot collide with anything the user wrote or any
name produced earlier.  We achieve this with a monotone counter owned by
the active :class:`~repro.kernel.state.KernelState` (one per session, so
isolated sessions draw deterministic, reproducible sequences) and a ``$``
separator, a character the surface lexer rejects in identifiers.

``x`` freshened once becomes ``x$1``; freshened again it becomes ``x$2`` (the
old suffix is stripped first so names do not grow without bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.state import current_state

_SEPARATOR = "$"

# The counter lives on the active kernel state (one per session): two
# sessions interleaving draw exactly the numbers each would draw alone,
# which is what makes interleaved runs byte-identical to solo runs.
# Thread safety: ``KernelState.fresh_index`` is a ``next()`` on an
# ``itertools.count``, atomic under the GIL (the iterator advances in a
# single C-level call with no Python-level re-entry), so concurrent
# ``fresh`` calls against one state can never observe or issue the same
# number.  A ``fresh`` call racing a reset of the same state may draw from
# either counter — acceptable, since resets exist for single-threaded
# determinism, not concurrent use of one session.


def fresh(base: str = "x") -> str:
    """Return a name fresh for the active session, derived from ``base``.

    The result never collides with a surface-syntax identifier (those cannot
    contain ``$``) nor with any name previously issued by the same session.
    Safe to call from multiple threads.
    """
    stem = base_name(base)
    if not stem:
        stem = "x"
    return f"{stem}{_SEPARATOR}{current_state().fresh_index()}"


def base_name(name: str) -> str:
    """Strip a fresh suffix, recovering the human-readable stem of a name."""
    index = name.find(_SEPARATOR)
    if index == -1:
        return name
    return name[:index]


def is_machine_name(name: str) -> bool:
    """Return True if ``name`` was produced by :func:`fresh`."""
    return _SEPARATOR in name


def reset_fresh_counter() -> None:
    """Reset the active session's counter.  Only for runs needing determinism.

    Also clears every cache of the active session (hash-consing tables,
    cached free-variable sets, memoized normal forms): cached results may
    embed fresh names issued before the reset, and keeping them would make
    runs depend on execution history — exactly what resetting is meant to
    avoid.  Sibling sessions are untouched and keep their caches warm.
    """
    current_state().reset()


@dataclass
class NameSupply:
    """A local, deterministic name supply.

    The global :func:`fresh` is convenient but makes output depend on
    execution history.  Components that must produce *reproducible* names
    (the pretty printer, the hoisting pass) use a ``NameSupply`` seeded at a
    known point instead.
    """

    prefix: str = "v"
    _next: int = 0
    _used: set[str] = field(default_factory=set)

    def fresh(self, base: str | None = None) -> str:
        """Return a name unused by this supply, derived from ``base``."""
        stem = base_name(base) if base else self.prefix
        if not stem:
            stem = self.prefix
        candidate = stem
        while candidate in self._used:
            self._next += 1
            candidate = f"{stem}{self._next}"
        self._used.add(candidate)
        return candidate

    def reserve(self, name: str) -> None:
        """Mark ``name`` as taken so :meth:`fresh` never returns it."""
        self._used.add(name)
