"""Ordered typing environments (telescopes), shared by both calculi.

An environment is an ordered sequence of entries

* *assumptions*  ``x : A`` and
* *definitions*  ``x = e : A``

where each entry's type (and definition) may mention earlier entries.  The
order is load-bearing: closure conversion's FV metafunction (paper
Figure 10) relies on it to produce well-formed environment telescopes.

The implementation never inspects the terms it stores, so one class serves
both CC and CC-CC; each language re-exports it from its ``context`` module.
Contexts are immutable — ``extend``/``define`` return new contexts — and
lookup is O(1) via an internal index, with later entries shadowing earlier
ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Binding", "Context"]


@dataclass(frozen=True, slots=True)
class Binding:
    """One context entry: ``name : type_`` or ``name = definition : type_``."""

    name: str
    type_: Any
    definition: Any | None = None

    @property
    def is_definition(self) -> bool:
        """True for ``x = e : A`` entries (δ-reducible variables)."""
        return self.definition is not None


@dataclass(frozen=True)
class Context:
    """An ordered typing environment Γ."""

    entries: tuple[Binding, ...] = ()
    _index: dict[str, int] = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self._index and self.entries:
            object.__setattr__(
                self, "_index", {b.name: i for i, b in enumerate(self.entries)}
            )

    @staticmethod
    def empty() -> "Context":
        """The empty environment ``·``."""
        return Context()

    def extend(self, name: str, type_: Any) -> "Context":
        """Return ``Γ, name : type_``."""
        return self._push(Binding(name, type_))

    def define(self, name: str, definition: Any, type_: Any) -> "Context":
        """Return ``Γ, name = definition : type_``."""
        return self._push(Binding(name, type_, definition))

    def _push(self, binding: Binding) -> "Context":
        new_index = dict(self._index)
        new_index[binding.name] = len(self.entries)
        child = Context(self.entries + (binding,), new_index)
        # Parent link for the kernel's incremental context fingerprinting
        # (repro.kernel.memo.context_token): lets a one-entry extension
        # derive its visible-definitions map from this context in O(1)
        # instead of rescanning all entries.
        object.__setattr__(child, "_kernel_parent", (self, binding))
        return child

    def lookup(self, name: str) -> Binding | None:
        """The entry binding ``name`` (innermost on shadowing), or None."""
        index = self._index.get(name)
        if index is None:
            return None
        return self.entries[index]

    def position(self, name: str) -> int:
        """Zero-based telescope position of ``name``; raises if absent."""
        index = self._index.get(name)
        if index is None:
            raise KeyError(f"unbound variable {name!r}")
        return index

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[Binding]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def names(self) -> list[str]:
        """All bound names, in telescope order."""
        return [b.name for b in self.entries]

    def prefix(self, name: str) -> "Context":
        """The strict prefix of the context before ``name``'s entry."""
        return Context(self.entries[: self.position(name)])

    def __str__(self) -> str:
        parts = []
        for binding in self.entries:
            if binding.is_definition:
                parts.append(f"{binding.name} = {binding.definition} : {binding.type_}")
            else:
                parts.append(f"{binding.name} : {binding.type_}")
        return ", ".join(parts) if parts else "·"
