"""Command-line interface: ``python -m repro <command>``.

Commands operate on a CC program given either as a file path or inline
via ``-e/--expr``:

* ``check``     — parse and type check; print the type.
* ``normalize`` — fully normalize; ``--engine {subst,nbe}`` (default
  ``nbe``) selects the evaluator, for A/B timing from the shell.
* ``compile``   — closure-convert (Figure 9); verify type preservation
  (Theorem 5.6); print the CC-CC term and its type.
* ``run``       — compile, hoist, execute on the CBV machine; print the
  value and cost counters.
* ``decompile`` — compile, then translate back through the Figure 8
  model; print the CC image and whether ``e ≡ (e⁺)°`` held.
* ``hoist``     — compile and print the static code table.

Examples::

    python -m repro check -e '\\ (A : Type) (x : A). x'
    python -m repro run -e '(\\ (x : Nat). succ x) 41'
    python -m repro compile program.cc
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import cc, cccc
from repro.cc.reduce import normalize_subst
from repro.closconv import compile_term
from repro.common.errors import ReproError
from repro.machine import hoist, machine_observation, program_context, run
from repro.model import decompile
from repro.surface import parse_term

__all__ = ["main"]


def _read_program(args: argparse.Namespace) -> cc.Term:
    if args.expr is not None:
        source = args.expr
    else:
        with open(args.file, encoding="utf-8") as handle:
            source = handle.read()
    return parse_term(source)


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("file", nargs="?", help="path to a surface-syntax program")
    group.add_argument("-e", "--expr", help="inline surface-syntax program")


def _cmd_check(args: argparse.Namespace) -> int:
    term = _read_program(args)
    type_ = cc.infer(cc.Context.empty(), term)
    print(f"term : {cc.pretty(term)}")
    print(f"type : {cc.pretty(type_)}")
    return 0


def _cmd_normalize(args: argparse.Namespace) -> int:
    term = _read_program(args)
    empty = cc.Context.empty()
    cc.infer(empty, term)  # reject ill-typed input before reducing
    engine = normalize_subst if args.engine == "subst" else cc.normalize
    start = time.perf_counter()
    normal = engine(empty, term)
    elapsed = time.perf_counter() - start
    print(f"term    : {cc.pretty(term)}")
    print(f"normal  : {cc.pretty(normal)}")
    print(f"engine  : {args.engine}")
    print(f"elapsed : {elapsed:.6f}s")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    term = _read_program(args)
    result = compile_term(cc.Context.empty(), term, verify=not args.no_verify)
    print(f"target      : {cccc.pretty(result.target)}")
    print(f"target type : {cccc.pretty(result.target_type)}")
    if result.checked_type is not None:
        print("verified    : CC-CC kernel re-checked the output (Theorem 5.6)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    term = _read_program(args)
    result = compile_term(cc.Context.empty(), term, verify=not args.no_verify)
    program = hoist(result.target)
    value, stats = run(program)
    observation = machine_observation(value)
    shown = observation if observation is not None else type(value).__name__
    print(f"value        : {shown}")
    print(f"code blocks  : {program.code_count}")
    print(
        f"cost         : {stats.steps} steps, {stats.closure_allocs} closures,"
        f" {stats.tuple_allocs} env cells, {stats.projections} projections"
    )
    return 0


def _cmd_decompile(args: argparse.Namespace) -> int:
    term = _read_program(args)
    result = compile_term(cc.Context.empty(), term, verify=False)
    image = decompile(result.target)
    empty = cc.Context.empty()
    print(f"(e⁺)°    : {cc.pretty(image)}")
    print(f"e ≡ (e⁺)°: {cc.equivalent(empty, term, image)}")
    return 0


def _cmd_hoist(args: argparse.Namespace) -> int:
    term = _read_program(args)
    result = compile_term(cc.Context.empty(), term, verify=False)
    program = hoist(result.target)
    program_context(program)  # re-type-check the hoisted form
    print(program)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Typed closure conversion for the Calculus of Constructions",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    for name, handler, description in [
        ("check", _cmd_check, "type check a CC program"),
        ("normalize", _cmd_normalize, "normalize a CC program (NbE or substitution engine)"),
        ("compile", _cmd_compile, "closure-convert and verify (Theorem 5.6)"),
        ("run", _cmd_run, "compile, hoist, and execute on the machine"),
        ("decompile", _cmd_decompile, "round-trip through the Figure 8 model"),
        ("hoist", _cmd_hoist, "print the static code table"),
    ]:
        sub = commands.add_parser(name, help=description)
        _add_input_arguments(sub)
        if name in ("compile", "run"):
            sub.add_argument(
                "--no-verify",
                action="store_true",
                help="skip re-checking the output in CC-CC",
            )
        if name == "normalize":
            sub.add_argument(
                "--engine",
                choices=("subst", "nbe"),
                default="nbe",
                help="evaluator: NbE environment machine (default) or the substitution oracle",
            )
        sub.set_defaults(handler=handler)

    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
