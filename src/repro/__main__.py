"""Command-line interface: ``python -m repro <command>``.

Every subcommand runs inside one :class:`repro.api.Session` — an isolated
engine workspace — and renders the session's structured result objects.
Commands operate on a CC program given either as a file path or inline
via ``-e/--expr``:

* ``check``     — parse and type check; print the type.
* ``normalize`` — fully normalize; ``--engine {subst,nbe}`` (default
  ``nbe``) selects the evaluator, for A/B timing from the shell.
* ``compile``   — closure-convert (Figure 9); verify type preservation
  (Theorem 5.6); print the CC-CC term and its type.  ``--target py``
  continues through hoisting into the compile-to-host backend and prints
  the staged artifact (content hash, block count, encoded size); with
  ``--memo-store`` the artifact is published to the shared persistent
  tier for later ``run --target py`` processes to start warm from.
* ``run``       — compile, hoist, execute; print the value and cost
  counters.  ``--target {machine,py}`` picks the execution backend:
  the abstract CBV machine (default) or the staged-Python backend,
  which produces identical values and counters (that is the
  differential the backend test suite enforces) but executes the
  program as native host closures; ``--memo-store PATH`` attaches the
  persistent tier so compiled artifacts survive restarts.
* ``link``      — link a component against imports (Theorem 5.7):
  ``--assume 'n : Nat'`` declares the interface Γ, ``--import 'n=41'``
  supplies the closing substitution.
* ``decompile`` — compile, then translate back through the Figure 8
  model; print the CC image and whether ``e ≡ (e⁺)°`` held.
* ``hoist``     — compile and print the static code table.
* ``profile``   — run a program under the per-span cost profiler
  (:mod:`repro.obs`) and emit a deterministic speedscope flamegraph:
  pipeline phases weighted by the same fuel/step counters the results
  carry, per-code-label β-entry counts inside the execute phase, and
  byte-identical totals between ``--target machine`` and ``--target py``.
  ``batch --profile PATH`` profiles a whole solo job stream the same way.
* ``batch``     — execute a stream of service jobs (JSONL file or a
  generated ``gen/`` corpus) in-process or across a worker pool:
  ``--workers N`` shards the batch over N processes (0 = solo),
  ``--engine {subst,nbe}`` picks the worker engine,
  ``--wire binary`` re-encodes program jobs onto the binary DAG wire,
  ``--memo-store PATH`` attaches the persistent memo tier (shared across
  workers, surviving restarts), ``--gen-kinds run,compile_py`` picks the
  job-kind rotation of the generated corpus (e.g. an all-``compile_py``
  stream for backend differentials), ``--chaos-seed N`` runs the batch under a
  small seeded fault plan (deterministic worker kills, store errors, wire
  corruption — the robustness harness of ``repro.service.faults``);
  ``--connect HOST:PORT`` streams the batch to a running ``serve``
  endpoint instead (``--chaos-seed`` then schedules *client-side*
  connection drops/stalls/truncations, healed by reconnect-and-resubmit).
* ``serve``     — run the streaming service endpoint: an NDJSON socket
  server over an elastic worker pool (``--min-workers``/``--max-workers``)
  with admission control (``--conn-window``, ``--max-inflight``),
  per-client fair share and fuel quotas (``--fuel-quota``), per-job
  deadlines, and graceful drain on SIGTERM (zero accepted-and-lost);
  ``--metrics-interval N`` streams live NDJSON telemetry snapshots, and
  clients may subscribe to the same stream with the ``watch`` op.
* ``store``     — maintain a persistent memo store: ``stat`` reports row
  and seal-validity counts plus payload byte totals for both the memo and
  compiled-artifact (``RPYC``) tables — including sealed-but-unloadable
  artifact orphans, ``scrub`` rebuilds the file from its
  validly-sealed rows (salvaging a torn store), ``compact`` deletes
  invalid rows in place and vacuums.

Every program-level subcommand (``check``, ``normalize``, ``compile``,
``run``, ``link``) accepts ``--json``: the structured result (type, steps,
engine, cache hit counts, diagnostics) is emitted as one JSON document, so
each entrypoint is machine-readable for service clients.  ``batch --json``
emits the full batch report (results in submission order + pool stats).

Examples::

    python -m repro check -e '\\ (A : Type) (x : A). x'
    python -m repro check --json -e '\\ (A : Type) (x : A). x'
    python -m repro run --json -e '(\\ (x : Nat). succ x) 41'
    python -m repro run --target py --memo-store memo.sqlite -e '(\\ (x : Nat). succ x) 41'
    python -m repro compile --target py -e '\\ (x : Nat). x'
    python -m repro link -e 'n' --assume 'n : Nat' --import 'n=41'
    python -m repro compile program.cc
    python -m repro batch jobs.jsonl --workers 4 --json
    python -m repro batch --gen-seed 7 --gen-builds 2 --workers 2
    python -m repro batch --gen-seed 7 --workers 2 --chaos-seed 11
    python -m repro serve --port 7420 --min-workers 1 --max-workers 4
    python -m repro batch --gen-seed 7 --connect 127.0.0.1:7420
    python -m repro store stat memo.sqlite
    python -m repro store scrub memo.sqlite --json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import cc, cccc
from repro.api import Session
from repro.common.errors import ReproError
from repro.kernel.state import ENGINES
from repro.machine import hoist, program_context
from repro.model import decompile
from repro.surface import parse_term

__all__ = ["main"]


def _read_source(args: argparse.Namespace) -> str:
    if args.expr is not None:
        return args.expr
    with open(args.file, encoding="utf-8") as handle:
        return handle.read()


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("file", nargs="?", help="path to a surface-syntax program")
    group.add_argument("-e", "--expr", help="inline surface-syntax program")


def _emit_json(document: dict) -> int:
    print(json.dumps(document, indent=2, default=str))
    return 0


def _binary_extras(session: Session, **terms: "cc.Term") -> dict:
    """``{field}_b64`` wire renderings of CC ``terms`` (``--wire binary``)."""
    from repro.wire.codec import term_to_b64

    with session.activate():
        return {
            f"{name}_b64": term_to_b64(cc.ast.LANGUAGE, cc.intern(term))
            for name, term in terms.items()
        }


def _cmd_check(session: Session, args: argparse.Namespace) -> int:
    result = session.check(_read_source(args))
    document = result.to_dict()
    if args.wire == "binary":
        document.update(_binary_extras(session, term=result.term, type=result.type_))
    if args.json:
        return _emit_json(document)
    print(f"term : {cc.pretty(result.term)}")
    print(f"type : {cc.pretty(result.type_)}")
    if args.wire == "binary":
        print(f"wire : term_b64 {len(document['term_b64'])} chars, "
              f"type_b64 {len(document['type_b64'])} chars")
    return 0


def _cmd_normalize(session: Session, args: argparse.Namespace) -> int:
    # Check first so the timer brackets (essentially) only the engine: the
    # re-infer inside `normalize` hits the judgment memo, keeping the
    # engine A/B comparison clean of parse/typecheck cost.
    checked = session.check(_read_source(args))
    start = time.perf_counter()
    result = session.normalize(checked.term, engine=args.engine)
    elapsed = time.perf_counter() - start
    document = result.to_dict()
    if args.wire == "binary":
        document.update(_binary_extras(session, term=result.term, normal=result.value))
    if args.json:
        document["elapsed_seconds"] = elapsed
        return _emit_json(document)
    print(f"term    : {cc.pretty(result.term)}")
    print(f"normal  : {cc.pretty(result.value)}")
    print(f"engine  : {result.engine}")
    print(f"steps   : {result.steps}")
    print(f"elapsed : {elapsed:.6f}s")
    if args.wire == "binary":
        print(f"wire    : term_b64 {len(document['term_b64'])} chars, "
              f"normal_b64 {len(document['normal_b64'])} chars")
    return 0


def _cmd_compile(session: Session, args: argparse.Namespace) -> int:
    if args.memo_store is not None:
        session.attach_memo_store(args.memo_store)
    result = session.compile(_read_source(args), verify=not args.no_verify)
    if args.target == "py":
        return _compile_to_py(session, args, result)
    if args.json:
        return _emit_json(result.to_dict())
    print(f"target      : {cccc.pretty(result.target)}")
    print(f"target type : {cccc.pretty(result.target_type)}")
    if result.verified:
        print("verified    : CC-CC kernel re-checked the output (Theorem 5.6)")
    return 0


def _compile_to_py(session: Session, args: argparse.Namespace, result) -> int:
    """``compile --target py``: stage into the host backend, print the artifact."""
    from repro.backend import (
        ArtifactMeta,
        artifact_key,
        compile_program,
        encode_artifact,
        store_artifact,
    )

    with session.activate():
        program = hoist(result.target)
        compiled = compile_program(program)
        meta = ArtifactMeta(
            check_steps=result.check_steps,
            verify_steps=result.verify_steps,
            verified=result.verified,
        )
        source = cc.intern(result.compilation.source)
        key = artifact_key(source, engine=session.engine, verify=not args.no_verify)
        store_artifact(session.state, key, compiled, meta)
        blob = encode_artifact(compiled.program, meta)
    session.detach_memo_store()  # flush the artifact row (no-op when unattached)
    document = {
        "artifact": compiled.source_hash,
        "key": key.hex(),
        "code_blocks": compiled.code_count,
        "size_bytes": len(blob),
        "verified": result.verified,
        "check_steps": result.check_steps,
        "verify_steps": result.verify_steps,
        "stored": args.memo_store is not None,
    }
    if args.json:
        return _emit_json(document)
    print(f"artifact    : {compiled.source_hash}")
    print(f"key         : {key.hex()}")
    print(f"code blocks : {compiled.code_count}")
    print(f"size        : {len(blob)} bytes")
    if args.memo_store is not None:
        print(f"stored      : {args.memo_store}")
    return 0


def _cmd_run(session: Session, args: argparse.Namespace) -> int:
    if args.memo_store is not None:
        session.attach_memo_store(args.memo_store)
    engine = "compiled" if args.target == "py" else None
    result = session.run(_read_source(args), verify=not args.no_verify, engine=engine)
    session.detach_memo_store()  # flush artifact/memo rows (no-op when unattached)
    if args.json:
        return _emit_json(result.to_dict())
    shown = result.observation if result.observation is not None else type(result.value).__name__
    print(f"value        : {shown}")
    print(f"code blocks  : {result.code_count}")
    print(
        f"cost         : {result.machine_steps} steps, {result.closure_allocs} closures,"
        f" {result.tuple_allocs} env cells, {result.projections} projections"
    )
    print(
        f"frames       : {result.env_allocs} env allocs, max width {result.max_env_size}"
    )
    if result.backend != "machine":
        print(f"backend      : {result.backend} (artifact {result.artifact})")
    return 0


def _cmd_profile(session: Session, args: argparse.Namespace) -> int:
    """``profile``: run the pipeline under the cost collector, emit speedscope.

    The per-phase weights are the same deterministic counters the result
    objects carry (check/verify/machine steps), so the flamegraph totals
    reconcile exactly with ``run --json`` — and are identical between the
    machine and compiled backends for the same program.
    """
    from repro import obs

    source = _read_source(args)
    engine = "compiled" if args.target == "py" else None
    with obs.activate() as profile:
        result = session.run(source, verify=not args.no_verify, engine=engine)
    subject = args.file if args.file is not None else "<expr>"
    document = profile.to_speedscope(name=subject)
    if args.output is None:
        return _emit_json(document)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    shown = result.observation if result.observation is not None else type(result.value).__name__
    totals = profile.totals()
    print(f"value    : {shown}")
    for phase in obs.PHASES:
        record = totals["phases"].get(phase)
        if record is not None:
            print(f"{phase:<9}: {record['weight']}")
    for label, count in totals.get("labels", {}).items():
        print(f"  {label:<7}: {count} entries")
    print(f"profile  : {args.output} (load it in speedscope)")
    return 0


def _cmd_link(session: Session, args: argparse.Namespace) -> int:
    ctx = cc.Context.empty()
    with session.activate():
        for entry in args.assume or []:
            name, _, type_text = entry.partition(":")
            if not name.strip() or not type_text.strip():
                raise ReproError(f"malformed --assume {entry!r} (expected 'name : TYPE')")
            ctx = ctx.extend(name.strip(), parse_term(type_text))
    imports: dict[str, str] = {}
    for entry in args.imports or []:
        name, separator, term_text = entry.partition("=")
        if not separator or not name.strip():
            raise ReproError(f"malformed --import {entry!r} (expected 'name=TERM')")
        imports[name.strip()] = term_text
    result = session.link(ctx, _read_source(args), imports)
    if args.json:
        return _emit_json(result.to_dict())
    print(f"linked : {cc.pretty(result.term)}")
    print(f"type   : {cc.pretty(result.type_)}")
    print(f"steps  : {result.steps}")
    return 0


def _read_job_specs(args: argparse.Namespace) -> list[dict]:
    """Job specs for ``batch``: a JSONL/JSON file, or a generated corpus."""
    if args.file is not None:
        with open(args.file, encoding="utf-8") as handle:
            text = handle.read()
        if text.lstrip().startswith("["):
            return json.loads(text)
        return [json.loads(line) for line in text.splitlines() if line.strip()]
    # Generated workload: N independent build streams, interleaved in the
    # round-robin arrival order a multiplexed service sees.
    from repro.gen.jobs import _DEFAULT_KINDS, build_stream, interleave
    from repro.service.jobs import PROGRAM_KINDS

    if args.gen_builds < 1:
        raise ReproError("--gen-builds must be at least 1")
    kinds = _DEFAULT_KINDS
    if args.gen_kinds is not None:
        kinds = tuple(kind.strip() for kind in args.gen_kinds.split(",") if kind.strip())
        bad = [kind for kind in kinds if kind not in PROGRAM_KINDS]
        if not kinds or bad:
            expected = ", ".join(sorted(PROGRAM_KINDS))
            raise ReproError(
                f"--gen-kinds must be a comma list of program kinds ({expected}); "
                f"got {args.gen_kinds!r}"
            )
    return interleave(
        build_stream(
            build,
            seed=args.gen_seed + build,
            iterations=1,
            passes=args.gen_passes,
            corpus_size=args.gen_count,
            engine=args.engine if args.engine != "nbe" else None,
            kinds=kinds,
        )
        for build in range(args.gen_builds)
    )


def _chaos_plan(specs: list[dict], seed: int) -> "object":
    """A small default fault plan over the stream (``batch --chaos-seed``).

    Scaled to the stream: roughly one job in eight is faulted, spread over
    transient kills, one poison, store errors, and wire corruption.  Job
    ids are pre-assigned positionally here so the schedule is a pure
    function of (stream, seed).
    """
    from repro.service.faults import FaultPlan
    from repro.service.jobs import PROGRAM_KINDS

    for index, spec in enumerate(specs):
        spec.setdefault("id", f"job-{index}")
    job_ids = [spec["id"] for spec in specs]
    budget = max(1, len(job_ids) // 8)
    corruptible = [
        spec["id"]
        for spec in specs
        if spec.get("kind") in PROGRAM_KINDS and (spec.get("program") or spec.get("term_b64"))
    ]
    return FaultPlan.generate(
        seed,
        job_ids,
        kills=budget,
        poisons=1,
        store_read_errors=budget,
        store_write_errors=budget,
        corruptions=budget,
        corruptible_ids=corruptible,
    )


def _conn_chaos_plan(specs: list[dict], seed: int) -> "object":
    """A connection-fault-only plan for ``batch --connect --chaos-seed``.

    Applied *client-side* (self-inflicted drops, stalls, truncations at
    exact job coordinates); reconnect-and-resubmit heals every one, so the
    results must be byte-identical to an unfaulted run — which is exactly
    what this mode exists to prove.
    """
    from repro.service.faults import FaultPlan

    for index, spec in enumerate(specs):
        spec.setdefault("id", f"job-{index}")
    job_ids = [spec["id"] for spec in specs]
    budget = max(1, len(job_ids) // 8)
    return FaultPlan.generate(
        seed, job_ids, conn_drops=budget, conn_stalls=budget, conn_truncates=budget
    )


def _cmd_batch(session: Session, args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro import api

    profile_scope = nullcontext(None)
    if args.profile is not None:
        if args.workers or args.connect is not None:
            # Worker processes profile their own address spaces; only the
            # in-process solo path shares the collector's slot.
            raise ReproError(
                "--profile requires an in-process solo run (omit --workers/--connect)"
            )
        from repro import obs

        profile_scope = obs.activate()
    try:
        with profile_scope as profile:
            specs = _read_job_specs(args)
            if args.wire == "binary":
                from repro.gen.jobs import binary_specs

                specs = binary_specs(specs)
            if args.connect is not None:
                plan = None
                if args.chaos_seed is not None:
                    plan = _conn_chaos_plan(specs, args.chaos_seed)
                report = api.execute_jobs(
                    specs,
                    connect=args.connect,
                    engine=args.engine,
                    fault_plan=plan,
                    client_options={"window": args.window},
                )
            else:
                plan = None
                if args.chaos_seed is not None:
                    plan = _chaos_plan(specs, args.chaos_seed)
                report = api.execute_jobs(
                    specs,
                    workers=args.workers,
                    engine=args.engine,
                    job_timeout=args.job_timeout,
                    memo_store=args.memo_store,
                    fault_plan=plan,
                )
    except (ValueError, json.JSONDecodeError) as error:
        # Malformed job specs (bad JSON, unknown kinds/fields) get the
        # CLI's one-line error contract, not a traceback.
        raise ReproError(f"bad job stream: {error}") from error
    if profile is not None:
        with open(args.profile, "w", encoding="utf-8") as handle:
            json.dump(profile.to_speedscope(name=f"batch of {len(specs)}"), handle, indent=2)
            handle.write("\n")
        print(f"profile: {args.profile}", file=sys.stderr)
    if args.json:
        _emit_json(report.to_dict())
    else:
        for result in report.results:
            if result.ok:
                summary = ", ".join(
                    f"{key}={value}" for key, value in sorted(result.payload.items())
                    if not isinstance(value, str) or len(value) <= 40
                )
                print(f"ok   {result.id}: {summary}")
            else:
                print(f"FAIL {result.id}: {result.error.get('type')}: {result.error.get('message')}")
        stats = ", ".join(f"{key}={value}" for key, value in sorted(report.stats.items())
                          if not isinstance(value, dict))
        print(f"-- {len(report.results)} job(s) in {report.elapsed_seconds:.3f}s "
              f"({args.workers} worker(s)); {stats}")
    return 0 if report.ok else 1


def _cmd_serve(session: Session, args: argparse.Namespace) -> int:
    from repro.service.endpoint import serve as serve_endpoint

    plan = None
    if args.chaos_plan is not None:
        with open(args.chaos_plan, encoding="utf-8") as handle:
            plan = json.load(handle)
    serve_endpoint(
        args.host,
        args.port,
        min_workers=args.min_workers,
        max_workers=args.max_workers,
        engine=args.engine,
        job_timeout=args.job_timeout,
        memo_store=args.memo_store,
        conn_window=args.conn_window,
        max_inflight=args.max_inflight,
        fuel_quota=args.fuel_quota,
        fault_plan=plan,
        metrics_interval=args.metrics_interval,
    )
    return 0


def _cmd_store(session: Session, args: argparse.Namespace) -> int:
    from repro.wire.persist import store_compact, store_scrub, store_stat

    action = {"stat": store_stat, "scrub": store_scrub, "compact": store_compact}
    document = action[args.action](args.path)
    if args.json:
        return _emit_json(document)
    for key, value in document.items():
        print(f"{key:<10}: {value}")
    return 0


def _cmd_decompile(session: Session, args: argparse.Namespace) -> int:
    result = session.compile(_read_source(args), verify=False)
    with session.activate():
        image = decompile(result.target)
        empty = cc.Context.empty()
        roundtrip = cc.equivalent(empty, result.compilation.source, image)
        print(f"(e⁺)°    : {cc.pretty(image)}")
        print(f"e ≡ (e⁺)°: {roundtrip}")
    return 0


def _cmd_hoist(session: Session, args: argparse.Namespace) -> int:
    result = session.compile(_read_source(args), verify=False)
    with session.activate():
        program = hoist(result.target)
        program_context(program)  # re-type-check the hoisted form
        print(program)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Typed closure conversion for the Calculus of Constructions",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    for name, handler, description in [
        ("check", _cmd_check, "type check a CC program"),
        ("normalize", _cmd_normalize, "normalize a CC program (NbE or substitution engine)"),
        ("compile", _cmd_compile, "closure-convert and verify (Theorem 5.6)"),
        ("run", _cmd_run, "compile, hoist, and execute on the machine"),
        ("link", _cmd_link, "link a component against imports (Theorem 5.7)"),
        ("decompile", _cmd_decompile, "round-trip through the Figure 8 model"),
        ("hoist", _cmd_hoist, "print the static code table"),
    ]:
        sub = commands.add_parser(name, help=description)
        _add_input_arguments(sub)
        if name in ("compile", "run"):
            sub.add_argument(
                "--no-verify",
                action="store_true",
                help="skip re-checking the output in CC-CC",
            )
            sub.add_argument(
                "--target",
                choices=("machine", "py") if name == "run" else ("cccc", "py"),
                default="machine" if name == "run" else "cccc",
                help="py stages the hoisted program into host Python closures "
                "(the compile-to-host backend); the default is the abstract "
                "machine (run) / the CC-CC term (compile)",
            )
            sub.add_argument(
                "--memo-store",
                metavar="PATH",
                default=None,
                help="attach the persistent tier so compiled artifacts are "
                "shared across processes and survive restarts",
            )
        if name == "normalize":
            sub.add_argument(
                "--engine",
                choices=ENGINES,
                default="nbe",
                help="evaluator: NbE environment machine (default) or the substitution oracle",
            )
        if name in ("check", "normalize"):
            sub.add_argument(
                "--wire",
                choices=("text", "binary"),
                default="text",
                help="binary adds base64 DAG encodings (*_b64 fields) to the output",
            )
        if name == "link":
            sub.add_argument(
                "--assume",
                action="append",
                metavar="NAME : TYPE",
                help="one interface entry of Γ (repeatable)",
            )
            sub.add_argument(
                "--import",
                dest="imports",
                action="append",
                metavar="NAME=TERM",
                help="one closing import (repeatable)",
            )
        if name in ("check", "normalize", "compile", "run", "link"):
            sub.add_argument(
                "--json",
                action="store_true",
                help="emit the structured result (type, steps, engine, cache hits) as JSON",
            )
        sub.set_defaults(handler=handler)

    profile = commands.add_parser(
        "profile",
        help="run a program under the cost profiler; emit a speedscope flamegraph",
    )
    _add_input_arguments(profile)
    profile.add_argument(
        "--target",
        choices=("machine", "py"),
        default="machine",
        help="execution backend to profile (per-phase totals are identical)",
    )
    profile.add_argument(
        "--no-verify",
        action="store_true",
        help="skip re-checking the output in CC-CC (drops the verify phase)",
    )
    profile.add_argument(
        "-o",
        "--output",
        metavar="PATH",
        default=None,
        help="write the speedscope JSON here and print a summary "
        "(default: the JSON goes to stdout)",
    )
    profile.set_defaults(handler=_cmd_profile)

    batch = commands.add_parser(
        "batch",
        help="execute a service job stream, in-process or across a worker pool",
    )
    batch.add_argument(
        "file",
        nargs="?",
        help="job specs: a JSONL file (one spec per line) or one JSON array",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes to shard across (0 = in-process solo run)",
    )
    batch.add_argument(
        "--engine",
        choices=ENGINES,
        default="nbe",
        help="normalization engine every worker session boots with",
    )
    batch.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="seconds one job may run before its worker is recycled",
    )
    batch.add_argument(
        "--json",
        action="store_true",
        help="emit the full batch report (results + pool stats) as JSON",
    )
    batch.add_argument(
        "--wire",
        choices=("text", "binary"),
        default="text",
        help="binary re-encodes program jobs onto the binary DAG wire (term_b64)",
    )
    batch.add_argument(
        "--memo-store",
        metavar="PATH",
        default=None,
        help="attach a persistent memo store (SQLite) shared across workers and restarts",
    )
    batch.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="N",
        help="run under a small seeded fault plan (deterministic chaos testing)",
    )
    batch.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="stream the batch to a running 'serve' endpoint instead of "
        "executing locally (--workers/--job-timeout are then the server's)",
    )
    batch.add_argument(
        "--window",
        type=int,
        default=32,
        help="jobs the --connect client keeps in flight at once",
    )
    batch.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="profile the batch (solo runs only) and write speedscope JSON here",
    )
    batch.add_argument("--gen-seed", type=int, default=0, help="generated-corpus seed")
    batch.add_argument(
        "--gen-builds", type=int, default=1, help="independent build streams to generate"
    )
    batch.add_argument(
        "--gen-count", type=int, default=4, help="corpus size per generated build"
    )
    batch.add_argument(
        "--gen-passes", type=int, default=2, help="warm passes per generated build"
    )
    batch.add_argument(
        "--gen-kinds",
        metavar="KIND[,KIND...]",
        default=None,
        help="job-kind rotation for the generated corpus (program kinds only; "
        "default: the mixed normalize/check/compile/run rotation)",
    )
    batch.set_defaults(handler=_cmd_batch)

    serve = commands.add_parser(
        "serve",
        help="run the streaming service endpoint over an elastic worker pool",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=7420, help="bind port (0 = pick free)")
    serve.add_argument(
        "--min-workers", type=int, default=1, help="worker slots the pool starts with"
    )
    serve.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="elastic ceiling (default: min-workers, i.e. a fixed pool)",
    )
    serve.add_argument(
        "--engine",
        choices=ENGINES,
        default="nbe",
        help="normalization engine every worker session boots with",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="seconds one job may run before its worker is recycled",
    )
    serve.add_argument(
        "--memo-store",
        metavar="PATH",
        default=None,
        help="shared persistent memo store (new workers start warm from it)",
    )
    serve.add_argument(
        "--conn-window",
        type=int,
        default=32,
        help="accepted-but-unfinished jobs per connection before reads pause",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=128,
        help="endpoint-wide hard admission limit; past it jobs are shed "
        "with Overloaded documents",
    )
    serve.add_argument(
        "--fuel-quota",
        type=int,
        default=None,
        help="per-client fuel clamp threaded into the kernel checkers",
    )
    serve.add_argument(
        "--metrics-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="print one NDJSON metrics snapshot (pool, endpoint, supervisor) "
        "per interval while serving",
    )
    serve.add_argument(
        "--chaos-plan",
        metavar="PATH",
        default=None,
        help="JSON FaultPlan file: worker faults go to the pool, "
        "connection faults fire at result delivery (chaos testing)",
    )
    serve.set_defaults(handler=_cmd_serve)

    store = commands.add_parser(
        "store",
        help="inspect or repair a persistent memo store (stat/scrub/compact)",
    )
    store.add_argument(
        "action",
        choices=("stat", "scrub", "compact"),
        help="stat: report row/seal counts; scrub: rebuild from validly-sealed "
        "rows (salvages a torn file); compact: delete invalid rows and vacuum",
    )
    store.add_argument("path", help="path of the SQLite memo store")
    store.add_argument(
        "--json", action="store_true", help="emit the maintenance report as JSON"
    )
    store.set_defaults(handler=_cmd_store)

    args = parser.parse_args(argv)
    session = Session(name="cli")
    try:
        return args.handler(session, args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
