"""Command-line interface: ``python -m repro <command>``.

Every subcommand runs inside one :class:`repro.api.Session` — an isolated
engine workspace — and renders the session's structured result objects.
Commands operate on a CC program given either as a file path or inline
via ``-e/--expr``:

* ``check``     — parse and type check; print the type.
* ``normalize`` — fully normalize; ``--engine {subst,nbe}`` (default
  ``nbe``) selects the evaluator, for A/B timing from the shell.
* ``compile``   — closure-convert (Figure 9); verify type preservation
  (Theorem 5.6); print the CC-CC term and its type.
* ``run``       — compile, hoist, execute on the CBV machine; print the
  value and cost counters.
* ``decompile`` — compile, then translate back through the Figure 8
  model; print the CC image and whether ``e ≡ (e⁺)°`` held.
* ``hoist``     — compile and print the static code table.

``check``, ``normalize``, and ``compile`` accept ``--json``: the
structured result (type, steps, engine, cache hit counts, diagnostics) is
emitted as one JSON document for machine consumption.

Examples::

    python -m repro check -e '\\ (A : Type) (x : A). x'
    python -m repro check --json -e '\\ (A : Type) (x : A). x'
    python -m repro run -e '(\\ (x : Nat). succ x) 41'
    python -m repro compile program.cc
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import cc, cccc
from repro.api import Session
from repro.common.errors import ReproError
from repro.kernel.state import ENGINES
from repro.machine import hoist, program_context
from repro.model import decompile

__all__ = ["main"]


def _read_source(args: argparse.Namespace) -> str:
    if args.expr is not None:
        return args.expr
    with open(args.file, encoding="utf-8") as handle:
        return handle.read()


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("file", nargs="?", help="path to a surface-syntax program")
    group.add_argument("-e", "--expr", help="inline surface-syntax program")


def _emit_json(document: dict) -> int:
    print(json.dumps(document, indent=2, default=str))
    return 0


def _cmd_check(session: Session, args: argparse.Namespace) -> int:
    result = session.check(_read_source(args))
    if args.json:
        return _emit_json(result.to_dict())
    print(f"term : {cc.pretty(result.term)}")
    print(f"type : {cc.pretty(result.type_)}")
    return 0


def _cmd_normalize(session: Session, args: argparse.Namespace) -> int:
    # Check first so the timer brackets (essentially) only the engine: the
    # re-infer inside `normalize` hits the judgment memo, keeping the
    # engine A/B comparison clean of parse/typecheck cost.
    checked = session.check(_read_source(args))
    start = time.perf_counter()
    result = session.normalize(checked.term, engine=args.engine)
    elapsed = time.perf_counter() - start
    if args.json:
        document = result.to_dict()
        document["elapsed_seconds"] = elapsed
        return _emit_json(document)
    print(f"term    : {cc.pretty(result.term)}")
    print(f"normal  : {cc.pretty(result.value)}")
    print(f"engine  : {result.engine}")
    print(f"steps   : {result.steps}")
    print(f"elapsed : {elapsed:.6f}s")
    return 0


def _cmd_compile(session: Session, args: argparse.Namespace) -> int:
    result = session.compile(_read_source(args), verify=not args.no_verify)
    if args.json:
        return _emit_json(result.to_dict())
    print(f"target      : {cccc.pretty(result.target)}")
    print(f"target type : {cccc.pretty(result.target_type)}")
    if result.verified:
        print("verified    : CC-CC kernel re-checked the output (Theorem 5.6)")
    return 0


def _cmd_run(session: Session, args: argparse.Namespace) -> int:
    result = session.run(_read_source(args), verify=not args.no_verify)
    shown = result.observation if result.observation is not None else type(result.value).__name__
    print(f"value        : {shown}")
    print(f"code blocks  : {result.code_count}")
    print(
        f"cost         : {result.machine_steps} steps, {result.closure_allocs} closures,"
        f" {result.tuple_allocs} env cells, {result.projections} projections"
    )
    return 0


def _cmd_decompile(session: Session, args: argparse.Namespace) -> int:
    result = session.compile(_read_source(args), verify=False)
    with session.activate():
        image = decompile(result.target)
        empty = cc.Context.empty()
        roundtrip = cc.equivalent(empty, result.compilation.source, image)
        print(f"(e⁺)°    : {cc.pretty(image)}")
        print(f"e ≡ (e⁺)°: {roundtrip}")
    return 0


def _cmd_hoist(session: Session, args: argparse.Namespace) -> int:
    result = session.compile(_read_source(args), verify=False)
    with session.activate():
        program = hoist(result.target)
        program_context(program)  # re-type-check the hoisted form
        print(program)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Typed closure conversion for the Calculus of Constructions",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    for name, handler, description in [
        ("check", _cmd_check, "type check a CC program"),
        ("normalize", _cmd_normalize, "normalize a CC program (NbE or substitution engine)"),
        ("compile", _cmd_compile, "closure-convert and verify (Theorem 5.6)"),
        ("run", _cmd_run, "compile, hoist, and execute on the machine"),
        ("decompile", _cmd_decompile, "round-trip through the Figure 8 model"),
        ("hoist", _cmd_hoist, "print the static code table"),
    ]:
        sub = commands.add_parser(name, help=description)
        _add_input_arguments(sub)
        if name in ("compile", "run"):
            sub.add_argument(
                "--no-verify",
                action="store_true",
                help="skip re-checking the output in CC-CC",
            )
        if name == "normalize":
            sub.add_argument(
                "--engine",
                choices=ENGINES,
                default="nbe",
                help="evaluator: NbE environment machine (default) or the substitution oracle",
            )
        if name in ("check", "normalize", "compile"):
            sub.add_argument(
                "--json",
                action="store_true",
                help="emit the structured result (type, steps, engine, cache hits) as JSON",
            )
        sub.set_defaults(handler=handler)

    args = parser.parse_args(argv)
    session = Session(name="cli")
    try:
        return args.handler(session, args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
