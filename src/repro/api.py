"""The session API: isolated engine workspaces with typed entrypoints.

A :class:`Session` is the unit of isolation the paper's separate-compilation
story (Theorem 5.8) needs operationally: components checked and compiled
*independently* must not observe each other's engine state.  Each session
owns a private :class:`~repro.kernel.state.KernelState` — hash-consing
tables, free-variable and intern caches, the whnf/normalize memo, the
judgment cache, the context-token tables, the fresh-name counter, the
default fuel, and the engine choice (``nbe`` vs ``subst``) — so two
sessions can run interleaved workloads (on one thread or on several) with
zero cross-talk and results byte-identical to solo runs.

On top of the state sit typed entrypoints covering the whole pipeline::

    session = api.Session()
    checked  = session.check(r"\\ (A : Type) (x : A). x")   # CheckResult
    normal   = session.normalize("(\\ (x : Nat). succ x) 41")
    compiled = session.compile(checked.term)                # Theorem 5.6
    ran      = session.run(checked.term)                    # CBV machine
    linked   = session.link(ctx, term, {"n": "41"})         # Theorem 5.7

Every entrypoint accepts surface text or an already-built ``cc.Term`` and
returns a structured result object carrying the value, the inferred type,
the reduction steps spent (exact, fuel-replay semantics — identical warm or
cold), the engine used, per-call cache-hit counts, and human-readable
diagnostics.  All results render to JSON-safe dicts via ``to_dict()`` —
the CLI's ``--json`` flag is just that.

The legacy module functions (``repro.cc.infer``, ``repro.cccc.normalize``,
``closconv.pipeline.compile_term`` …) remain first-class: they read the
*active* kernel state, so outside any session they are thin shims over the
shared process-default session (:func:`default_session`), and inside
``with session.activate():`` they operate on that session's state.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro import cc, cccc
from repro.backend import (
    ArtifactMeta,
    artifact_key,
    compile_program,
    load_artifact,
    store_artifact,
    validate_backend,
)
from repro.cc.reduce import normalize_subst
from repro.closconv.pipeline import CompilationResult, compile_term
from repro.kernel.budget import DEFAULT_FUEL, Budget
from repro.kernel.state import KernelState, activate, default_state, validate_engine
from repro.linking.link import ClosingSubstitution, check_substitution, link
from repro.machine import Program, hoist, machine_observation, run
from repro.surface import parse_term

__all__ = [
    "BatchReport",
    "CheckResult",
    "CompileResult",
    "LinkResult",
    "NormalizeResult",
    "ParseResult",
    "RunResult",
    "Session",
    "default_session",
    "execute_jobs",
]

_SESSION_IDS = itertools.count(1)

#: The profiling hook: ``repro.obs.activate()`` installs a Profile
#: collector here; every entrypoint checks the slot (one list indexing,
#: no import of ``repro.obs``) and records phase attributions when it is
#: non-None.  A process that never profiles never imports the obs
#: package at all — the byte-identity tests rely on that.
_PROFILE: list = [None]

_MACHINE_COUNTER_FIELDS = (
    "steps",
    "closure_allocs",
    "tuple_allocs",
    "projections",
    "code_lookups",
    "max_frame_size",
    "env_allocs",
    "max_env_size",
)


def _machine_counters(stats: Any) -> dict[str, int]:
    """Execution counters as a dict — MachineStats and CompiledStats alike."""
    return {name: getattr(stats, name, 0) for name in _MACHINE_COUNTER_FIELDS}


# --------------------------------------------------------------------------
# Structured results.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ParseResult:
    """A parsed surface program."""

    term: cc.Term
    source: str
    session: str

    def to_dict(self) -> dict[str, Any]:
        return {"term": cc.pretty(self.term), "session": self.session}


@dataclass(frozen=True)
class CheckResult:
    """One run of the CC typing judgment ``Γ ⊢ e : A``."""

    term: cc.Term
    type_: cc.Term
    steps: int
    engine: str
    session: str
    cache_hits: dict[str, int] = field(default_factory=dict)
    diagnostics: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "term": cc.pretty(self.term),
            "type": cc.pretty(self.type_),
            "steps": self.steps,
            "engine": self.engine,
            "session": self.session,
            "cache_hits": dict(self.cache_hits),
            "diagnostics": list(self.diagnostics),
        }


@dataclass(frozen=True)
class NormalizeResult:
    """A full normalization, with the input's type as a well-typedness witness."""

    term: cc.Term
    value: cc.Term
    type_: cc.Term
    steps: int
    check_steps: int
    engine: str
    session: str
    cache_hits: dict[str, int] = field(default_factory=dict)
    diagnostics: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "term": cc.pretty(self.term),
            "normal": cc.pretty(self.value),
            "type": cc.pretty(self.type_),
            "steps": self.steps,
            "check_steps": self.check_steps,
            "engine": self.engine,
            "session": self.session,
            "cache_hits": dict(self.cache_hits),
            "diagnostics": list(self.diagnostics),
        }


@dataclass(frozen=True)
class CompileResult:
    """One closure conversion, optionally verified (Theorem 5.6).

    ``compilation`` is the full :class:`~repro.closconv.pipeline.CompilationResult`
    (source/target terms, types, and contexts); the flat fields summarize it.
    """

    compilation: CompilationResult
    steps: int
    check_steps: int
    verify_steps: int
    engine: str
    session: str
    cache_hits: dict[str, int] = field(default_factory=dict)
    diagnostics: tuple[str, ...] = ()

    @property
    def target(self) -> cccc.Term:
        return self.compilation.target

    @property
    def target_type(self) -> cccc.Term:
        return self.compilation.target_type

    @property
    def verified(self) -> bool:
        return self.compilation.checked_type is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "term": cc.pretty(self.compilation.source),
            "type": cc.pretty(self.compilation.source_type),
            "target": cccc.pretty(self.compilation.target),
            "target_type": cccc.pretty(self.compilation.target_type),
            "verified": self.verified,
            "steps": self.steps,
            "check_steps": self.check_steps,
            "verify_steps": self.verify_steps,
            "engine": self.engine,
            "session": self.session,
            "cache_hits": dict(self.cache_hits),
            "diagnostics": list(self.diagnostics),
        }


@dataclass(frozen=True)
class RunResult:
    """A full pipeline execution: compile, hoist, run — machine or compiled.

    ``backend`` records which execution engine produced the value:
    ``"machine"`` (the interpreting CBV oracle) or ``"compiled"`` (staged
    host closures, :mod:`repro.backend`).  The cost counters mirror
    :class:`~repro.machine.machine.MachineStats` on both backends — that
    equality is the compiled backend's differential contract.  On a warm
    artifact-cache hit the pipeline never re-compiles, so
    ``compile_result`` is None there; the flat ``check_steps``/
    ``verify_steps``/``verified`` fields (replayed from the artifact) are
    the stable surface either way.
    """

    compile_result: CompileResult | None
    program: Program
    source: cc.Term
    value: Any
    observation: Any
    machine_steps: int
    closure_allocs: int
    tuple_allocs: int
    projections: int
    env_allocs: int
    max_env_size: int
    compile_steps: int
    check_steps: int
    verify_steps: int
    verified: bool
    engine: str
    backend: str
    session: str
    artifact: str | None = None
    cache_hits: dict[str, int] = field(default_factory=dict)
    diagnostics: tuple[str, ...] = ()

    @property
    def code_count(self) -> int:
        return self.program.code_count

    def to_dict(self) -> dict[str, Any]:
        shown = self.observation if self.observation is not None else type(self.value).__name__
        document = {
            "term": cc.pretty(self.source),
            "value": shown,
            "code_blocks": self.code_count,
            "machine_steps": self.machine_steps,
            "closure_allocs": self.closure_allocs,
            "tuple_allocs": self.tuple_allocs,
            "projections": self.projections,
            "env_allocs": self.env_allocs,
            "max_env_size": self.max_env_size,
            "steps": self.compile_steps,
            "check_steps": self.check_steps,
            "verify_steps": self.verify_steps,
            "verified": self.verified,
            "engine": self.engine,
            "backend": self.backend,
            "session": self.session,
            "cache_hits": dict(self.cache_hits),
            "diagnostics": list(self.diagnostics),
        }
        if self.artifact is not None:
            document["artifact"] = self.artifact
        return document


@dataclass(frozen=True)
class LinkResult:
    """A verified link ``γ(e)`` of a component against its imports."""

    term: cc.Term
    type_: cc.Term
    steps: int
    session: str
    cache_hits: dict[str, int] = field(default_factory=dict)
    diagnostics: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "term": cc.pretty(self.term),
            "type": cc.pretty(self.type_),
            "steps": self.steps,
            "session": self.session,
            "cache_hits": dict(self.cache_hits),
            "diagnostics": list(self.diagnostics),
        }


# --------------------------------------------------------------------------
# The session.
# --------------------------------------------------------------------------


class Session:
    """An isolated engine workspace.

    All mutable kernel state used by this session's entrypoints lives in
    its private :class:`KernelState`; nothing is shared with other sessions
    or with the process-default state.  A single session is safe to use
    from multiple threads in the GIL sense (its caches are dict-based), but
    isolation — and the scaling the benchmark gates — comes from giving
    each concurrent workload its *own* session.

    Args:
        name: label for diagnostics; autogenerated when omitted.
        engine: normalization engine, ``"nbe"`` (default) or ``"subst"``
            (the substitution oracle with per-occurrence step counting).
        fuel: default reduction fuel for every entrypoint's :class:`Budget`.
    """

    def __init__(
        self,
        name: str | None = None,
        engine: str = "nbe",
        fuel: int = DEFAULT_FUEL,
        _state: KernelState | None = None,
    ) -> None:
        if _state is not None:
            self._state = _state
        else:
            self._state = KernelState(
                name or f"session-{next(_SESSION_IDS)}", engine=engine, fuel=fuel
            )

    # -- identity and state -------------------------------------------------

    @property
    def name(self) -> str:
        return self._state.name

    @property
    def engine(self) -> str:
        """The normalization engine ``normalize`` uses by default."""
        return self._state.engine

    @property
    def fuel(self) -> int:
        return self._state.fuel

    @property
    def state(self) -> KernelState:
        """The underlying kernel state (for ``repro.kernel`` interop)."""
        return self._state

    def activate(self):
        """Context manager making this session the active kernel state.

        Inside the block, every legacy entrypoint (``repro.cc.*``,
        ``repro.cccc.*``, ``compile_term`` …) reads and writes this
        session's caches and fresh-name counter.
        """
        return activate(self._state)

    def budget(self) -> Budget:
        """A fresh :class:`Budget` carrying this session's default fuel."""
        return Budget(remaining=self._state.fuel)

    def reset(self) -> None:
        """Return this session to a cold, deterministic zero.

        Clears every cache this session owns and restarts its fresh-name
        counter.  Sibling sessions are untouched — their caches stay warm.
        An attached persistent memo tier is flushed and detached (the
        on-disk store survives; re-attach to keep using it) so a reset
        session holds no cross-session storage handle.
        """
        self._state.reset()

    def attach_memo_store(self, store: Any) -> Any:
        """Attach a persistent memo tier (a path or an opened store).

        The session's normalization caches consult the store's
        content-keyed entries on miss and write through on store; hits
        replay their recorded fuel, so results are byte-identical to cold
        runs — merely warm from the first request, across processes and
        restarts.  Returns the :class:`repro.wire.persist.PersistentTier`.
        """
        return self._state.attach_memo_store(store)

    def detach_memo_store(self) -> Any:
        """Flush and detach the persistent tier (no-op when none attached)."""
        return self._state.detach_memo_store()

    def cache_stats(self) -> dict[str, int]:
        """Entry counts per cache (see ``KernelState.stats``)."""
        return self._state.stats()

    def hit_counts(self) -> dict[str, int]:
        """Cumulative cache-hit counters for the fuel-replaying caches."""
        return self._state.hit_counts()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session({self.name!r}, engine={self.engine!r})"

    # -- entrypoints ---------------------------------------------------------

    def parse(self, source: str) -> ParseResult:
        """Parse surface text into a CC term (no type checking)."""
        with self.activate():
            term = parse_term(source)
            profile = _PROFILE[0]
            if profile is not None:
                # Parsing spends no fuel; its deterministic weight is the
                # size of the term it produced.
                profile.phase("parse", weight=cc.term_size(term))
            return ParseResult(term=term, source=source, session=self.name)

    def check(self, program: str | cc.Term, ctx: cc.Context | None = None) -> CheckResult:
        """Type check ``program`` (text or term) under ``ctx`` (empty default)."""
        with self.activate():
            term = self._coerce(program)
            context = ctx if ctx is not None else cc.Context.empty()
            before = self._state.hit_counts()
            budget = self.budget()
            type_ = cc.infer(context, term, budget)
            hits = self._hit_delta(before)
            profile = _PROFILE[0]
            if profile is not None:
                profile.phase("typecheck", weight=budget.spent, counters=hits)
            return CheckResult(
                term=term,
                type_=type_,
                steps=budget.spent,
                engine=self.engine,
                session=self.name,
                cache_hits=hits,
            )

    def normalize(
        self,
        program: str | cc.Term,
        ctx: cc.Context | None = None,
        engine: str | None = None,
    ) -> NormalizeResult:
        """Type check, then fully normalize ``program``.

        ``engine`` overrides the session default for this call: ``"nbe"``
        (call-by-need environment machine, each contraction counted once)
        or ``"subst"`` (the substitution oracle whose per-occurrence step
        counts match ``normalize_counting``).
        """
        # Only None means "session default": an empty string from an unset
        # config field must fail validation, not silently pick the default.
        engine = validate_engine(engine if engine is not None else self.engine)
        with self.activate():
            term = self._coerce(program)
            context = ctx if ctx is not None else cc.Context.empty()
            before = self._state.hit_counts()
            check_budget = self.budget()
            type_ = cc.infer(context, term, check_budget)  # reject ill-typed input
            normalize_budget = self.budget()
            if engine == "nbe":
                value = cc.normalize(context, term, normalize_budget)
            else:
                value = normalize_subst(context, term, normalize_budget)
            hits = self._hit_delta(before)
            profile = _PROFILE[0]
            if profile is not None:
                profile.phase("typecheck", weight=check_budget.spent)
                profile.phase("normalize", weight=normalize_budget.spent, counters=hits)
            return NormalizeResult(
                term=term,
                value=value,
                type_=type_,
                steps=normalize_budget.spent,
                check_steps=check_budget.spent,
                engine=engine,
                session=self.name,
                cache_hits=hits,
            )

    def compile(
        self,
        program: str | cc.Term,
        ctx: cc.Context | None = None,
        verify: bool = True,
        inline_definitions: bool = False,
    ) -> CompileResult:
        """Closure-convert ``program`` (Figure 9), verifying Theorem 5.6.

        With ``verify`` (the default) the CC-CC kernel re-checks the output
        against the translated type; a mismatch raises
        :class:`~repro.closconv.pipeline.TypePreservationViolation`.
        """
        with self.activate():
            term = self._coerce(program)
            context = ctx if ctx is not None else cc.Context.empty()
            before = self._state.hit_counts()
            check_budget = self.budget()
            verify_budget = self.budget()
            compilation = compile_term(
                context,
                term,
                verify=verify,
                inline_definitions=inline_definitions,
                source_budget=check_budget,
                verify_budget=verify_budget,
            )
            diagnostics = (
                ("target re-checked against the translated type (Theorem 5.6)",)
                if verify
                else ("verification skipped (verify=False)",)
            )
            hits = self._hit_delta(before)
            profile = _PROFILE[0]
            if profile is not None:
                profile.phase("typecheck", weight=check_budget.spent, counters=hits)
                # The translation itself is fuel-free; its deterministic
                # weight is the size of the CC-CC term it emitted.
                profile.phase("closconv", weight=cccc.term_size(compilation.target))
                profile.phase("verify", weight=verify_budget.spent)
            return CompileResult(
                compilation=compilation,
                steps=check_budget.spent + verify_budget.spent,
                check_steps=check_budget.spent,
                verify_steps=verify_budget.spent,
                engine=self.engine,
                session=self.name,
                cache_hits=hits,
                diagnostics=diagnostics,
            )

    def run(
        self,
        program: str | cc.Term,
        ctx: cc.Context | None = None,
        verify: bool = True,
        engine: str | None = None,
    ) -> RunResult:
        """Compile, hoist, and execute ``program``.

        ``engine`` picks the execution backend: ``"machine"`` (default)
        interprets on the CBV abstract machine; ``"compiled"`` stages the
        hoisted program into host Python closures (:mod:`repro.backend`),
        consulting the per-session and persistent artifact caches first —
        a warm hit skips type checking, closure conversion, verification,
        and hoisting entirely, replaying the cold run's recorded fuel so
        its result document is byte-identical.  Values, error documents,
        and every cost counter agree across backends.
        """
        backend = validate_backend(engine if engine is not None else "machine")
        if backend == "compiled":
            return self._run_compiled(program, ctx=ctx, verify=verify)
        with self.activate():
            compiled = self.compile(program, ctx=ctx, verify=verify)
            hoisted = hoist(compiled.target)
            profile = _PROFILE[0]
            label_counts: dict[str, int] | None = {} if profile is not None else None
            value, stats = run(hoisted, label_counts=label_counts)
            if profile is not None:
                profile.phase("hoist", weight=hoisted.code_count)
                profile.phase(
                    "execute",
                    weight=stats.steps,
                    counters=_machine_counters(stats),
                    labels=label_counts,
                )
            return RunResult(
                compile_result=compiled,
                program=hoisted,
                source=compiled.compilation.source,
                value=value,
                observation=machine_observation(value),
                machine_steps=stats.steps,
                closure_allocs=stats.closure_allocs,
                tuple_allocs=stats.tuple_allocs,
                projections=stats.projections,
                env_allocs=stats.env_allocs,
                max_env_size=stats.max_env_size,
                compile_steps=compiled.steps,
                check_steps=compiled.check_steps,
                verify_steps=compiled.verify_steps,
                verified=compiled.verified,
                engine=compiled.engine,
                backend="machine",
                session=self.name,
                cache_hits=dict(compiled.cache_hits),
                diagnostics=compiled.diagnostics,
            )

    def _run_compiled(
        self,
        program: str | cc.Term,
        ctx: cc.Context | None,
        verify: bool,
    ) -> RunResult:
        """The ``engine="compiled"`` half of :meth:`run`.

        Artifacts are keyed on the interned source term plus the compile
        options, so only closed programs (the empty context — every
        service job, after :func:`repro.gen.jobs.close_over`) are cached;
        an open-context run compiles fresh and skips the cache.  A warm
        hit charges the artifact's recorded check/verify fuel into fresh
        budgets, so a fuel-starved session fails at exactly the step a
        cold compile would have.
        """
        with self.activate():
            term = self._coerce(program)
            source = cc.intern(term)
            profile = _PROFILE[0]
            cacheable = (ctx is None or len(ctx) == 0) and profile is None
            # Profiled runs stage a freshly *instrumented* program: its
            # block closures carry the per-label counter dict, so it must
            # neither come from nor enter the artifact caches.  Results
            # are unaffected — cold and warm runs are byte-identical by
            # the artifact tier's fuel-replay contract.
            label_counts: dict[str, int] | None = {} if profile is not None else None
            key = (
                artifact_key(source, engine=self.engine, verify=verify)
                if cacheable
                else None
            )
            before = self._state.hit_counts()
            cached = load_artifact(self._state, key) if key is not None else None
            if cached is not None:
                compiled_program, meta = cached
                compile_result = None
                # Replay the recorded fuel: same budgets, same order, same
                # exhaustion point as the cold compile.
                check_budget = self.budget()
                check_budget.charge(meta.check_steps)
                verify_budget = self.budget()
                verify_budget.charge(meta.verify_steps)
            else:
                compile_result = self.compile(term, ctx=ctx, verify=verify)
                hoisted = hoist(compile_result.target)
                compiled_program = compile_program(hoisted, label_counts=label_counts)
                meta = ArtifactMeta(
                    check_steps=compile_result.check_steps,
                    verify_steps=compile_result.verify_steps,
                    verified=compile_result.verified,
                )
                if key is not None:
                    store_artifact(self._state, key, compiled_program, meta)
            value, stats = compiled_program.execute()
            if profile is not None:
                profile.phase("hoist", weight=compiled_program.code_count)
                profile.phase(
                    "execute",
                    weight=stats.steps,
                    counters=_machine_counters(stats),
                    labels=label_counts,
                )
            return RunResult(
                compile_result=compile_result,
                program=compiled_program.program,
                source=source,
                value=value,
                observation=machine_observation(value),
                machine_steps=stats.steps,
                closure_allocs=stats.closure_allocs,
                tuple_allocs=stats.tuple_allocs,
                projections=stats.projections,
                env_allocs=stats.env_allocs,
                max_env_size=stats.max_env_size,
                compile_steps=meta.check_steps + meta.verify_steps,
                check_steps=meta.check_steps,
                verify_steps=meta.verify_steps,
                verified=meta.verified,
                engine=self.engine,
                backend="compiled",
                session=self.name,
                artifact=compiled_program.source_hash,
                cache_hits=self._hit_delta(before),
                diagnostics=(
                    f"compiled {compiled_program.code_count} code block(s) "
                    f"to host closures (artifact {compiled_program.source_hash})",
                ),
            )

    def link(
        self,
        ctx: cc.Context,
        program: str | cc.Term,
        imports: Mapping[str, str | cc.Term] | ClosingSubstitution,
    ) -> LinkResult:
        """Link component ``program`` (interface ``ctx``) with ``imports``.

        ``imports`` maps each assumption of ``ctx`` to a closed term (text
        or term).  The substitution is checked against the telescope
        (``Γ ⊢ γ``, raising :class:`~repro.common.errors.LinkError` on any
        missing, open, or ill-typed import) before being applied, and the
        linked program is re-checked in the empty context.
        """
        with self.activate():
            term = self._coerce(program)
            if isinstance(imports, ClosingSubstitution):
                gamma = imports
            else:
                gamma = ClosingSubstitution(
                    {name: self._coerce(value) for name, value in imports.items()}
                )
            before = self._state.hit_counts()
            # One budget across the telescope check and the final re-check,
            # so ``steps`` is the exact fuel the whole link spent.
            budget = self.budget()
            check_substitution(ctx, gamma, budget)
            linked = link(ctx, term, gamma)
            type_ = cc.infer(cc.Context.empty(), linked, budget)
            hits = self._hit_delta(before)
            profile = _PROFILE[0]
            if profile is not None:
                profile.phase("link", weight=budget.spent, counters=hits)
            return LinkResult(
                term=linked,
                type_=type_,
                steps=budget.spent,
                session=self.name,
                cache_hits=hits,
                diagnostics=(f"linked {len(gamma.mapping)} import(s) (Γ ⊢ γ checked)",),
            )

    # -- batch/service interop ----------------------------------------------

    def execute(self, job) -> Any:
        """Execute one service wire job against this session.

        ``job`` is a :class:`repro.service.jobs.Job` or its wire dict.  The
        in-process executor is the same function the pool workers run, so
        a solo session and a sharded pool produce byte-identical
        deterministic payloads for the same job stream.
        """
        from repro.service.executor import execute_job
        from repro.service.jobs import Job

        if not isinstance(job, Job):
            job = Job.from_dict(job)
        return execute_job(self, job)

    # -- internals -----------------------------------------------------------

    def _coerce(self, program: str | cc.Term) -> cc.Term:
        """Surface text → term; terms pass through."""
        if isinstance(program, str):
            term = parse_term(program)
            profile = _PROFILE[0]
            if profile is not None:
                # Parse cost is term size: the parser is single-pass, and
                # node count is the deterministic stand-in for its work.
                profile.phase("parse", weight=cc.term_size(term))
            return term
        return program

    def _hit_delta(self, before: dict[str, int]) -> dict[str, int]:
        after = self._state.hit_counts()
        return {name: after[name] - before.get(name, 0) for name in after}


# --------------------------------------------------------------------------
# Batch execution: the same jobs, pooled or solo.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchReport:
    """The outcome of a batch: per-job results plus pool/session statistics.

    ``results`` is in submission order.  ``stats`` is the dispatcher's
    aggregated :class:`~repro.service.dispatcher.PoolStats` dict when the
    batch ran pooled, or the solo session's job/hit counters when it ran
    in-process.
    """

    results: tuple
    stats: dict[str, Any]
    workers: int
    engine: str
    elapsed_seconds: float

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def canonical(self) -> list[dict[str, Any]]:
        """The deterministic halves of every result, in submission order."""
        return [result.canonical() for result in self.results]

    def to_dict(self) -> dict[str, Any]:
        return {
            "results": [result.to_dict() for result in self.results],
            "stats": dict(self.stats),
            "workers": self.workers,
            "engine": self.engine,
            "elapsed_seconds": self.elapsed_seconds,
            "ok": self.ok,
        }


def execute_jobs(
    jobs,
    *,
    workers: int = 0,
    engine: str = "nbe",
    fuel: int | None = None,
    session: Session | None = None,
    memo_store: Any = None,
    fault_plan: Any = None,
    connect: str | None = None,
    client_options: Any = None,
    **dispatcher_options: Any,
) -> BatchReport:
    """Execute a stream of service jobs, pooled or solo.

    With ``workers=0`` (the default) every job runs in-process against one
    session — the reference semantics, and what a worker does with its
    slice of the stream.  With ``workers > 0`` the batch is sharded across
    a process pool (:class:`repro.service.Dispatcher`), one session per
    worker; deterministic payloads are byte-identical either way, which is
    the contract `benchmarks/bench_e19_service.py` gates.

    ``memo_store`` attaches the persistent memo tier for the duration of
    the batch: a path (or, solo only, an opened
    :class:`~repro.wire.persist.PersistentMemoStore`).  Solo, the batch
    session consults/fills it and the report's ``stats["persist"]``
    carries the store counters; pooled, every worker attaches the path at
    bootstrap.  Either way results stay byte-identical to a store-less
    run — entries replay recorded fuel and render α-canonically.

    ``fault_plan`` (a :class:`~repro.service.faults.FaultPlan` or its wire
    dict) runs the batch under deterministic fault injection — chaos
    testing only.  Solo, an injector is activated around the executor loop
    (worker-kill faults are inert in-process); pooled, the plan ships to
    every worker.  The report's ``stats["chaos"]`` carries the plan
    summary either way.

    ``connect`` ("HOST:PORT") streams the batch to a running service
    endpoint (``python -m repro serve``) through the bundled windowed
    client instead of executing locally; ``workers``/``engine`` are then
    the server's business, and ``fault_plan`` applies its
    *connection-category* faults client-side (self-inflicted drops,
    stalls, truncations — the reconnect/resubmit machinery heals them, so
    results stay byte-identical).  ``client_options`` is a dict forwarded
    to :class:`~repro.service.client.ServiceClient` (``window``,
    ``max_retries``, ``timeout``, …).

    ``dispatcher_options`` are forwarded to the :class:`Dispatcher`
    (``max_pending``, ``job_timeout``, ``max_attempts``, …).
    """
    from contextlib import nullcontext

    from repro.service.faults import FaultInjector, FaultPlan
    from repro.service.jobs import Job, JobResult

    specs = [job if isinstance(job, Job) else Job.from_dict(job) for job in jobs]
    for index, spec in enumerate(specs):
        if spec.id is None:
            specs[index] = Job.from_dict({**spec.to_dict(), "id": f"job-{index}"})
    plan = FaultPlan.coerce(fault_plan)
    start = time.perf_counter()
    if connect is not None:
        from repro.service.client import ServiceClient

        with ServiceClient.from_address(
            connect, fault_plan=plan, **(client_options or {})
        ) as client:
            documents = client.run_batch(specs)
            stats_poll = client.stats()
        results = tuple(JobResult.from_dict(document) for document in documents)
        stats = {
            "connect": connect,
            "client": {
                "reconnects": client.reconnects,
                "resubmitted": client.resubmitted,
                "shed_retries": client.shed_retries,
            },
            **stats_poll.get("meta", {}).get("stats", {}),
        }
        if plan is not None:
            stats["chaos"] = plan.summary()
        pool_workers = stats.get("pool", {}).get("workers", 0)
        return BatchReport(
            results=results,
            stats=stats,
            workers=pool_workers,
            engine=engine,
            elapsed_seconds=time.perf_counter() - start,
        )
    if workers <= 0:
        from repro.service.faults import activate as activate_faults
        from repro.wire.persist import PersistentMemoStore

        solo = session if session is not None else Session(
            name="batch", engine=engine, fuel=DEFAULT_FUEL if fuel is None else fuel
        )
        store = None
        opened_here = False
        if memo_store is not None:
            if isinstance(memo_store, PersistentMemoStore):
                store = memo_store
            else:
                store = PersistentMemoStore(memo_store)
                opened_here = True
            solo.attach_memo_store(store)
        chaos = nullcontext() if plan is None else activate_faults(FaultInjector(plan))
        try:
            with chaos:
                results = tuple(solo.execute(spec) for spec in specs)
        finally:
            if store is not None:
                solo.detach_memo_store()
        stats = {
            "workers": 0,
            "submitted": len(specs),
            "completed": len(specs),
            "failed": sum(1 for result in results if not result.ok),
            "cache_hits": solo.hit_counts(),
        }
        if store is not None:
            stats["persist"] = store.stats()
            if opened_here:
                store.close()
        if plan is not None:
            stats["chaos"] = plan.summary()
        return BatchReport(
            results=results,
            stats=stats,
            workers=0,
            engine=engine,
            elapsed_seconds=time.perf_counter() - start,
        )

    from repro.service.dispatcher import Dispatcher

    if memo_store is not None:
        dispatcher_options["memo_store"] = str(memo_store)
    if plan is not None:
        dispatcher_options["fault_plan"] = plan
    with Dispatcher(
        workers=workers, engine=engine, fuel=fuel, **dispatcher_options
    ) as pool:
        results = tuple(pool.run_batch(specs))
        stats = pool.stats().to_dict()
        if plan is not None:
            stats["chaos"] = plan.summary(pool.max_attempts)
    return BatchReport(
        results=results,
        stats=stats,
        workers=workers,
        engine=engine,
        elapsed_seconds=time.perf_counter() - start,
    )


# --------------------------------------------------------------------------
# The process-default session.
# --------------------------------------------------------------------------

_DEFAULT_SESSION: Session | None = None
_DEFAULT_SESSION_LOCK = threading.Lock()


def default_session() -> Session:
    """The session wrapping the process-default kernel state.

    This is the state every legacy entrypoint runs against when no session
    is active, so ``default_session().cache_stats()`` reports on exactly
    the caches `repro.cc.*`` calls outside any session have been filling.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        with _DEFAULT_SESSION_LOCK:
            if _DEFAULT_SESSION is None:
                _DEFAULT_SESSION = Session(_state=default_state())
    return _DEFAULT_SESSION
