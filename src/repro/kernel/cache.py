"""Identity-keyed caches over immutable terms, with a global reset registry.

Terms in both calculi are immutable, so any fact derived from a term (its
free-variable set, its interned representative, its normal form under a
fixed context) can be cached against the term's *identity*.  Identity keys
avoid the O(n) structural hashing a ``dict[Term, ...]`` would pay on every
lookup — but they are only sound while the keyed object is alive, because
CPython reuses addresses.  :class:`TermCache` therefore holds a weak
reference to every key and evicts the entry the moment the term is
collected, before its id can be recycled.

Every cache created by the kernel registers itself here so that
:func:`reset_caches` (invoked by ``repro.common.names.reset_fresh_counter``)
returns the whole kernel to a cold, deterministic state.
"""

from __future__ import annotations

import weakref
from typing import Any, Iterable

__all__ = ["TermCache", "cache_stats", "register_cache", "reset_caches"]

#: Every registered cache; anything with a ``clear()`` method qualifies.
_REGISTRY: list[Any] = []


def register_cache(cache: Any) -> Any:
    """Register ``cache`` for global resets and return it (decorator-style)."""
    _REGISTRY.append(cache)
    return cache


def reset_caches() -> None:
    """Clear every registered kernel cache.

    Used by tests (via ``reset_fresh_counter``) to make cached results —
    which may embed fresh names generated before the reset — unreachable,
    so runs stay deterministic.
    """
    for cache in _REGISTRY:
        cache.clear()


def cache_stats() -> dict[str, int]:
    """Entry counts per registered cache, for benchmarks and diagnostics."""
    return {cache.name: len(cache) for cache in _REGISTRY}


class TermCache:
    """Map ``id(term) -> value`` with eviction when the term is collected.

    The cache does *not* keep its keys alive: each entry is paired with a
    weak reference whose callback removes the entry when the term dies.
    This makes the cache safe for identity keying (a recycled id can never
    observe a stale entry) without pinning every term ever seen.
    """

    __slots__ = ("name", "_values", "_refs")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: dict[int, Any] = {}
        self._refs: dict[int, weakref.ref] = {}

    def get(self, term: Any) -> Any | None:
        """The cached value for ``term``, or None."""
        return self._values.get(id(term))

    def put(self, term: Any, value: Any) -> Any:
        """Cache ``value`` for ``term`` and return it."""
        key = id(term)
        values = self._values
        if key in values:
            values[key] = value
            return value
        values[key] = value
        refs = self._refs

        def _evict(_ref: weakref.ref, _key: int = key) -> None:
            values.pop(_key, None)
            refs.pop(_key, None)

        refs[key] = weakref.ref(term, _evict)
        return value

    def clear(self) -> None:
        """Drop every entry (the weak references die with their dict)."""
        self._values.clear()
        self._refs.clear()

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, term: Any) -> bool:
        return id(term) in self._values

    def values(self) -> Iterable[Any]:
        return self._values.values()
