"""Identity-keyed caches over immutable terms.

Terms in both calculi are immutable, so any fact derived from a term (its
free-variable set, its interned representative, its normal form under a
fixed context) can be cached against the term's *identity*.  Identity keys
avoid the O(n) structural hashing a ``dict[Term, ...]`` would pay on every
lookup — but they are only sound while the keyed object is alive, because
CPython reuses addresses.  :class:`TermCache` therefore holds a weak
reference to every key and evicts the entry the moment the term is
collected, before its id can be recycled.

Cache *instances* are owned by :class:`repro.kernel.state.KernelState` —
one full set per session, so independent workloads never share an entry.
The module-level helpers here (:func:`reset_caches`, :func:`cache_stats`,
:func:`register_cache`) are shims over the **active** state, preserving the
historical global-registry API for the process-default session.
"""

from __future__ import annotations

import weakref
from typing import Any, Iterable

__all__ = [
    "ActiveCacheProxy",
    "DictCache",
    "TermCache",
    "cache_stats",
    "register_cache",
    "reset_caches",
]


def register_cache(cache: Any) -> Any:
    """Register an extra cache with the *active* state and return it.

    Anything with ``clear()``, ``__len__`` and a ``name`` qualifies.  The
    kernel's own caches no longer go through here — they are constructed by
    :class:`~repro.kernel.state.KernelState` directly; this hook remains for
    consumers that built custom caches against the old global registry.

    Binding-time semantics (a contract change from the global-registry
    era): the cache joins whichever state is active *at registration* and
    is cleared only by that state's resets.  A cache registered at import
    time (process-default state) is therefore **not** cleared by
    ``Session.reset()`` on some other session — a consumer caching
    derived facts that embed a session's fresh names must register the
    cache inside that session (``with session.activate(): register_cache(…)``).
    """
    from repro.kernel.state import current_state

    return current_state().register(cache)


def reset_caches() -> None:
    """Clear every cache of the active kernel state.

    Used by tests (via ``reset_fresh_counter``) to make cached results —
    which may embed fresh names generated before the reset — unreachable,
    so runs stay deterministic.  Only the active session is touched;
    sibling sessions keep their caches warm.
    """
    from repro.kernel.state import current_state

    current_state().clear_caches()


def cache_stats() -> dict[str, int]:
    """Entry counts per cache of the active state, for benchmarks/diagnostics."""
    from repro.kernel.state import current_state

    return current_state().stats()


class DictCache:
    """Adapter giving a plain dict the cache clear/len/name protocol."""

    __slots__ = ("name", "_data")

    def __init__(self, name: str, data: dict) -> None:
        self.name = name
        self._data = data

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class ActiveCacheProxy:
    """Back-compat proxy over one cache of the *active* kernel state.

    ``NORMALIZATION_CACHE`` and ``JUDGMENT_CACHE`` used to bind global
    cache objects; instances of this proxy keep those imports working
    while resolving per-session on every access.  ``accessor`` picks the
    cache off a :class:`~repro.kernel.state.KernelState`.  ``__getattr__``
    forwards everything (``lookup``, ``store``, ``clear``, ``hits``,
    ``name``, ``max_entries``, …) so the proxy stays complete as the cache
    API grows; only dunders need spelling out (their lookup bypasses
    ``__getattr__``), and ``__len__`` is the one callers use.
    """

    __slots__ = ("_accessor",)

    def __init__(self, accessor: Any) -> None:
        self._accessor = accessor

    def _target(self) -> Any:
        from repro.kernel.state import current_state

        return self._accessor(current_state())

    def __getattr__(self, item: str) -> Any:
        return getattr(self._target(), item)

    def __len__(self) -> int:
        return len(self._target())


class TermCache:
    """Map ``id(term) -> value`` with eviction when the term is collected.

    The cache does *not* keep its keys alive: each entry is paired with a
    weak reference whose callback removes the entry when the term dies.
    This makes the cache safe for identity keying (a recycled id can never
    observe a stale entry) without pinning every term ever seen.
    """

    __slots__ = ("name", "_values", "_refs")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: dict[int, Any] = {}
        self._refs: dict[int, weakref.ref] = {}

    def get(self, term: Any) -> Any | None:
        """The cached value for ``term``, or None."""
        return self._values.get(id(term))

    def put(self, term: Any, value: Any) -> Any:
        """Cache ``value`` for ``term`` and return it."""
        key = id(term)
        values = self._values
        if key in values:
            values[key] = value
            return value
        values[key] = value
        refs = self._refs

        def _evict(_ref: weakref.ref, _key: int = key) -> None:
            values.pop(_key, None)
            refs.pop(_key, None)

        refs[key] = weakref.ref(term, _evict)
        return value

    def clear(self) -> None:
        """Drop every entry (the weak references die with their dict)."""
        self._values.clear()
        self._refs.clear()

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, term: Any) -> bool:
        return id(term) in self._values

    def values(self) -> Iterable[Any]:
        return self._values.values()
