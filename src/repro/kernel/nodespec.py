"""Declarative binding-structure descriptors for AST node classes.

A :class:`Language` records, for each node class of a calculus, a
:class:`NodeSpec`: which dataclass fields are binder *names*, which are
subterms (*children*), which are plain data (e.g. ``BoolLit.value``), and —
the load-bearing part — which binders scope over which children.  Every
generic engine in the kernel (free variables, substitution, α-equivalence,
traversal, hash-consing) is driven by these specs, so adding a node to a
calculus means adding one ``Language.node`` call, not five traversal cases.

Scoping is *telescopic*: a node's binders are ordered, and each child is in
scope of some prefix of them.  Both calculi satisfy this (e.g. CC-CC's
``CodeLam(env_name, env_type, arg_name, arg_type, body)`` has ``env_type``
under no binder, ``arg_type`` under ``env_name``, and ``body`` under both),
and registration enforces it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.kernel.state import current_state, register_language

__all__ = ["ChildSpec", "Language", "NodeSpec"]


@dataclass(frozen=True, slots=True)
class ChildSpec:
    """A term-valued field and the binder fields (a prefix) it sits under."""

    attr: str
    binders: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class NodeSpec:
    """The binding structure of one AST node class."""

    cls: type
    binder_attrs: tuple[str, ...]
    data_attrs: tuple[str, ...]
    children: tuple[ChildSpec, ...]
    field_order: tuple[str, ...]
    #: ``{child.attr for child in children}`` — membership tests on the
    #: rebuild hot paths (substitution, hoisting, interning) must not
    #: rescan ``children`` per field.
    child_attrs: frozenset[str] = frozenset()


class Language:
    """A calculus, as seen by the kernel: its node specs and its cache views.

    The node specs are immutable, process-wide facts about the calculus and
    live on the instance.  The identity-keyed caches the generic engines
    use (free variables, interned representatives, the hash-consing table
    of :mod:`repro.kernel.intern`) are *session state*: the properties
    below resolve them through the active :class:`~repro.kernel.state.KernelState`,
    so two sessions interning the same calculus never share a table.  The
    two concrete instances live at ``repro.cc.ast.LANGUAGE`` and
    ``repro.cccc.ast.LANGUAGE``.
    """

    __slots__ = ("name", "term_base", "var_cls", "specs")

    def __init__(self, name: str, term_base: type, var_cls: type) -> None:
        self.name = name
        self.term_base = term_base
        self.var_cls = var_cls
        self.specs: dict[type, NodeSpec] = {}
        register_language(self)

    @property
    def fv_cache(self) -> Any:
        """The active session's free-variable cache for this calculus."""
        return current_state().store(self).fv_cache

    @property
    def intern_cache(self) -> Any:
        """The active session's ``id(term) -> representative`` intern memo."""
        return current_state().store(self).intern_cache

    @property
    def hashcons(self) -> dict[tuple, Any]:
        """The active session's hash-consing table for this calculus."""
        return current_state().store(self).hashcons

    @property
    def hash_cache(self) -> Any:
        """The active session's ``id(term) -> content hash`` cache (weak)."""
        return current_state().store(self).hash_cache

    @property
    def by_hash(self) -> dict[bytes, Any]:
        """The active session's ``content hash -> node`` adoption index."""
        return current_state().store(self).by_hash

    def store(self) -> Any:
        """The active session's whole :class:`~repro.kernel.state.LanguageStore`.

        For walks that touch several caches (the wire codec): resolve the
        contextvar once instead of once per property access.
        """
        return current_state().store(self)

    def node(
        self,
        cls: type,
        *,
        binders: tuple[str, ...] = (),
        data: tuple[str, ...] = (),
        scopes: dict[str, int] | None = None,
    ) -> NodeSpec:
        """Register ``cls`` with binder fields ``binders`` and payload ``data``.

        Every other dataclass field is a child; ``scopes`` maps a child
        field to the number of leading binders in scope for it (default 0).
        """
        field_order = tuple(f.name for f in dataclasses.fields(cls))
        scopes = scopes or {}
        children = tuple(
            ChildSpec(name, binders[: scopes.get(name, 0)])
            for name in field_order
            if name not in binders and name not in data
        )
        depth = 0
        for child in children:
            if len(child.binders) < depth:
                raise ValueError(
                    f"{cls.__name__}: child binder depths must be nondecreasing "
                    "in field order (telescopic scoping)"
                )
            depth = len(child.binders)
        if depth > len(binders):
            raise ValueError(f"{cls.__name__}: scope depth exceeds declared binders")
        spec = NodeSpec(
            cls,
            tuple(binders),
            tuple(data),
            children,
            field_order,
            frozenset(child.attr for child in children),
        )
        self.specs[cls] = spec
        return spec

    def spec(self, term: Any) -> NodeSpec:
        """The spec for ``term``'s class; TypeError for foreign objects."""
        spec = self.specs.get(type(term))
        if spec is None:
            raise TypeError(f"not a {self.name.upper()} term: {term!r}")
        return spec
