"""Reduction fuel, shared by both calculi.

A :class:`Budget` is threaded through a whole normalization call tree and
spent one step per δ/ζ/β/π/ι contraction.  The memoized normalizer
(:mod:`repro.kernel.memo`) records how many steps a cached computation
originally took and *replays* that cost via :meth:`Budget.charge` on every
hit, so fuel exhaustion and step counting (``normalize_counting``) behave
identically whether or not a result came from the cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import NormalizationDepthExceeded

__all__ = ["DEFAULT_FUEL", "Budget"]

DEFAULT_FUEL = 1_000_000


@dataclass
class Budget:
    """Remaining reduction steps; shared across a normalization call tree."""

    remaining: int = DEFAULT_FUEL
    spent: int = 0

    def spend(self) -> None:
        """Consume one reduction step."""
        if self.remaining <= 0:
            raise NormalizationDepthExceeded(
                f"normalization exceeded its fuel after {self.spent} steps"
            )
        self.remaining -= 1
        self.spent += 1

    def charge(self, steps: int) -> None:
        """Replay ``steps`` reduction steps recorded by a cached computation.

        Equivalent to calling :meth:`spend` ``steps`` times: raises
        :class:`NormalizationDepthExceeded` at the point the fuel would have
        run out, leaving ``spent`` at the value an uncached run would have
        reached.
        """
        if steps <= 0:
            return
        if steps > self.remaining:
            self.spent += self.remaining
            self.remaining = 0
            raise NormalizationDepthExceeded(
                f"normalization exceeded its fuel after {self.spent} steps"
            )
        self.remaining -= steps
        self.spent += steps
