"""The shared term kernel: one engine under both calculi.

CC (:mod:`repro.cc`) and CC-CC (:mod:`repro.cccc`) are different *languages*
— different node types, different reduction axioms — but identical *term
machinery*: capture-avoiding parallel substitution, α-equivalence, free
variables, traversal, and normalization bookkeeping.  This package factors
that machinery out, parameterized by a :class:`~repro.kernel.nodespec.Language`
descriptor that records, for every AST node class, which fields are binders,
which are subterms, and which binders scope over which subterms.

On top of the generic engines, the kernel adds the sharing discipline that
makes the hot paths fast:

* **hash-consing** (:mod:`repro.kernel.intern`) — constructors that intern
  structurally equal nodes, so equal terms are pointer-comparable, plus an
  α-canonicalizing :func:`intern` whose representatives coincide exactly for
  α-equivalent terms;
* **cached free variables** (:mod:`repro.kernel.fv`) — per-node frozensets
  computed bottom-up and memoized in an identity-keyed weak cache, turning
  the per-call ``free_vars`` scan inside ``subst`` into an O(1) lookup;
* **memoized normalization** (:mod:`repro.kernel.memo`) — a WHNF/normalize
  cache keyed on term identity plus a context fingerprint, replaying the
  recorded fuel consumption on every hit so budget semantics are preserved;
* **incremental conversion** (:mod:`repro.kernel.convert`) — a whnf-driven
  equivalence engine with pointer/intern short-circuits and per-calculus η
  hooks, replacing normalize-then-compare on the [Conv] hot path;
* **judgment memoization** (:mod:`repro.kernel.judgment`) — typing tokens
  fingerprinting the full visible-binding map, plus a fuel-replaying cache
  for ``infer``/``check``/``infer_universe``/``equivalent``.

Every piece of mutable kernel state — the caches above, the context-token
tables, and the fresh-name counter — is owned by a
:class:`~repro.kernel.state.KernelState` (:mod:`repro.kernel.state`), one
per session; :func:`current_state` resolves the one in force.  The legacy
helpers (:func:`reset_caches`, :func:`cache_stats`,
:func:`repro.common.names.reset_fresh_counter`) act on the active state, so
existing callers run against the process-default session unchanged.
"""

from repro.kernel.alpha import alpha_equal
from repro.kernel.budget import DEFAULT_FUEL, Budget
from repro.kernel.cache import DictCache, TermCache, cache_stats, register_cache, reset_caches
from repro.kernel.convert import ConversionRules, convert
from repro.kernel.fv import free_vars
from repro.kernel.intern import build, intern
from repro.kernel.judgment import JUDGMENT_CACHE, JudgmentCache, judgment_cache, typing_token
from repro.kernel.memo import (
    NORMALIZATION_CACHE,
    NormalizationCache,
    context_token,
    normalization_cache,
)
from repro.kernel.nodespec import ChildSpec, Language, NodeSpec
from repro.kernel.state import KernelState, activate, current_state, default_state
from repro.kernel.substitution import subst
from repro.kernel.traverse import subterms, term_size

__all__ = [
    "DEFAULT_FUEL",
    "Budget",
    "ChildSpec",
    "ConversionRules",
    "DictCache",
    "JUDGMENT_CACHE",
    "JudgmentCache",
    "KernelState",
    "Language",
    "NORMALIZATION_CACHE",
    "NodeSpec",
    "NormalizationCache",
    "TermCache",
    "activate",
    "alpha_equal",
    "build",
    "cache_stats",
    "context_token",
    "convert",
    "current_state",
    "default_state",
    "free_vars",
    "intern",
    "judgment_cache",
    "normalization_cache",
    "register_cache",
    "reset_caches",
    "subst",
    "subterms",
    "term_size",
    "typing_token",
]
