"""The shared term kernel: one engine under both calculi.

CC (:mod:`repro.cc`) and CC-CC (:mod:`repro.cccc`) are different *languages*
— different node types, different reduction axioms — but identical *term
machinery*: capture-avoiding parallel substitution, α-equivalence, free
variables, traversal, and normalization bookkeeping.  This package factors
that machinery out, parameterized by a :class:`~repro.kernel.nodespec.Language`
descriptor that records, for every AST node class, which fields are binders,
which are subterms, and which binders scope over which subterms.

On top of the generic engines, the kernel adds the sharing discipline that
makes the hot paths fast:

* **hash-consing** (:mod:`repro.kernel.intern`) — constructors that intern
  structurally equal nodes, so equal terms are pointer-comparable, plus an
  α-canonicalizing :func:`intern` whose representatives coincide exactly for
  α-equivalent terms;
* **cached free variables** (:mod:`repro.kernel.fv`) — per-node frozensets
  computed bottom-up and memoized in an identity-keyed weak cache, turning
  the per-call ``free_vars`` scan inside ``subst`` into an O(1) lookup;
* **memoized normalization** (:mod:`repro.kernel.memo`) — a WHNF/normalize
  cache keyed on term identity plus a context fingerprint, replaying the
  recorded fuel consumption on every hit so budget semantics are preserved;
* **incremental conversion** (:mod:`repro.kernel.convert`) — a whnf-driven
  equivalence engine with pointer/intern short-circuits and per-calculus η
  hooks, replacing normalize-then-compare on the [Conv] hot path;
* **judgment memoization** (:mod:`repro.kernel.judgment`) — typing tokens
  fingerprinting the full visible-binding map, plus a fuel-replaying cache
  for ``infer``/``check``/``infer_universe``/``equivalent``.

All caches register themselves with :func:`reset_caches`;
:func:`repro.common.names.reset_fresh_counter` calls it so tests that reset
the fresh-name supply also start from cold caches.
"""

from repro.kernel.alpha import alpha_equal
from repro.kernel.budget import DEFAULT_FUEL, Budget
from repro.kernel.cache import TermCache, cache_stats, register_cache, reset_caches
from repro.kernel.convert import ConversionRules, convert
from repro.kernel.fv import free_vars
from repro.kernel.intern import build, intern
from repro.kernel.judgment import JUDGMENT_CACHE, JudgmentCache, typing_token
from repro.kernel.memo import NORMALIZATION_CACHE, NormalizationCache, context_token
from repro.kernel.nodespec import ChildSpec, Language, NodeSpec
from repro.kernel.substitution import subst
from repro.kernel.traverse import subterms, term_size

__all__ = [
    "DEFAULT_FUEL",
    "Budget",
    "ChildSpec",
    "ConversionRules",
    "JUDGMENT_CACHE",
    "JudgmentCache",
    "Language",
    "NORMALIZATION_CACHE",
    "NodeSpec",
    "NormalizationCache",
    "TermCache",
    "alpha_equal",
    "build",
    "cache_stats",
    "context_token",
    "convert",
    "free_vars",
    "intern",
    "register_cache",
    "reset_caches",
    "subst",
    "subterms",
    "term_size",
    "typing_token",
]
