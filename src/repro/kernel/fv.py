"""Cached free-variable sets, computed bottom-up and keyed by identity.

The free variables of a node depend only on the node itself: for each child
``c`` under binders ``b…``, the contribution is ``fv(c) − {b…}``.  That
makes the sets position-independent and therefore cacheable per node.  One
call to :func:`free_vars` fills the cache for the *entire* subterm DAG with
a single iterative post-order pass (no recursion, so 10k-deep application
spines are fine); thereafter every lookup — in particular the per-call scan
``subst`` used to pay — is a dict probe returning a shared frozenset.

The cache (``Language.fv_cache``, resolved through the active session's
:class:`~repro.kernel.state.LanguageStore`) is weak on its keys: entries die
with their terms and never pin memory.  Hash-consing
(:mod:`repro.kernel.intern`) feeds the same cache eagerly at construction
time.
"""

from __future__ import annotations

from typing import Any

from repro.kernel.nodespec import Language

__all__ = ["free_vars"]

_EMPTY: frozenset[str] = frozenset()


def free_vars(lang: Language, term: Any) -> frozenset[str]:
    """The free variable names of ``term``, as a cached shared frozenset."""
    cache = lang.fv_cache  # the active session's store, resolved once per call
    cached = cache.get(term)
    if cached is not None:
        return cached

    var_cls = lang.var_cls
    get = cache.get
    put = cache.put
    while True:
        # Iterative post-order: a frame is (term, expanded?).  Children are
        # pushed on first visit; the node's set is assembled on the second,
        # when every child is guaranteed to be cached.  (Guaranteed within
        # one thread: a child cannot be *evicted* while its parent pins it.
        # A sibling thread clearing this state's caches mid-walk — shared-
        # state misuse; give concurrent workloads their own session — can
        # still empty the table between visits, so a missing child aborts
        # and restarts the walk rather than being mistaken for ∅ and
        # poisoning the cache with a silently wrong set.)
        stale = False
        stack: list[tuple[Any, bool]] = [(term, False)]
        while stack and not stale:
            node, expanded = stack.pop()
            if not expanded:
                if get(node) is not None:
                    continue
                if isinstance(node, var_cls):
                    put(node, frozenset((node.name,)))
                    continue
                spec = lang.spec(node)
                if not spec.children:
                    put(node, _EMPTY)
                    continue
                stack.append((node, True))
                for child in spec.children:
                    sub = getattr(node, child.attr)
                    if get(sub) is None:
                        stack.append((sub, False))
            else:
                spec = lang.specs[type(node)]
                parts: list[frozenset[str]] = []
                for child in spec.children:
                    sub = get(getattr(node, child.attr))
                    if sub is None:
                        stale = True  # raced a clear: restart the walk
                        break
                    if child.binders and sub:
                        bound = {getattr(node, b) for b in child.binders}
                        if not bound.isdisjoint(sub):
                            sub = sub.difference(bound)
                    if sub:
                        parts.append(sub)
                if stale:
                    break
                if not parts:
                    result = _EMPTY
                elif len(parts) == 1:
                    result = parts[0]
                else:
                    result = parts[0].union(*parts[1:])
                put(node, result)

        if not stale:
            result = cache.get(term)
            if result is not None:
                return result
        # Raced a sibling clear (mid-walk or before the final probe).
        # Never return None — or worse, a wrong set — for an immutable
        # fact; redo the walk against the now-empty cache.
