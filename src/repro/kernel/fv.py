"""Cached free-variable sets, computed bottom-up and keyed by identity.

The free variables of a node depend only on the node itself: for each child
``c`` under binders ``b…``, the contribution is ``fv(c) − {b…}``.  That
makes the sets position-independent and therefore cacheable per node.  One
call to :func:`free_vars` fills the cache for the *entire* subterm DAG with
a single iterative post-order pass (no recursion, so 10k-deep application
spines are fine); thereafter every lookup — in particular the per-call scan
``subst`` used to pay — is a dict probe returning a shared frozenset.

The cache (``Language.fv_cache``) is weak on its keys: entries die with
their terms and never pin memory.  Hash-consing (:mod:`repro.kernel.intern`)
feeds the same cache eagerly at construction time.
"""

from __future__ import annotations

from typing import Any

from repro.kernel.nodespec import Language

__all__ = ["free_vars"]

_EMPTY: frozenset[str] = frozenset()


def free_vars(lang: Language, term: Any) -> frozenset[str]:
    """The free variable names of ``term``, as a cached shared frozenset."""
    cache = lang.fv_cache
    cached = cache.get(term)
    if cached is not None:
        return cached

    var_cls = lang.var_cls
    get = cache.get
    put = cache.put
    # Iterative post-order: a frame is (term, expanded?).  Children are
    # pushed on first visit; the node's set is assembled on the second,
    # when every child is guaranteed to be cached.
    stack: list[tuple[Any, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            if get(node) is not None:
                continue
            if isinstance(node, var_cls):
                put(node, frozenset((node.name,)))
                continue
            spec = lang.spec(node)
            if not spec.children:
                put(node, _EMPTY)
                continue
            stack.append((node, True))
            for child in spec.children:
                sub = getattr(node, child.attr)
                if get(sub) is None:
                    stack.append((sub, False))
        else:
            spec = lang.specs[type(node)]
            parts: list[frozenset[str]] = []
            for child in spec.children:
                sub = get(getattr(node, child.attr))
                if child.binders and sub:
                    bound = {getattr(node, b) for b in child.binders}
                    if not bound.isdisjoint(sub):
                        sub = sub.difference(bound)
                if sub:
                    parts.append(sub)
            if not parts:
                result = _EMPTY
            elif len(parts) == 1:
                result = parts[0]
            else:
                result = parts[0].union(*parts[1:])
            put(node, result)

    return cache.get(term)
