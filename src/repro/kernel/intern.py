"""Hash-consing constructors and α-canonical interning.

Two layers of sharing:

* :func:`build` is a *hash-consing constructor*: ``build(lang, App, f, a)``
  returns the unique node for that class and field tuple, keyed on the
  identities of its (already-built) children.  Structurally equal terms
  constructed through ``build`` are therefore pointer-equal, ``is`` works
  as structural equality, and each node's free-variable set is computed
  bottom-up exactly once, at construction time.

* :func:`intern` maps an arbitrary term (built with the plain dataclass
  constructors, parsed, substituted — anything) to a canonical
  representative such that ``intern(a) is intern(b)`` **iff** ``a`` and
  ``b`` are α-equivalent.  Canonicalization renames every binder to a
  reserved name determined by its binder *depth* (de Bruijn levels spelled
  as names), which is injective on α-classes, and then rebuilds through
  :func:`build`.  The ``id(term) -> representative`` memo is weak on the
  input, so re-interning the same object is O(1).

Canonical binder names start with ``"$"`` — the surface lexer rejects
``$`` in identifiers and the fresh-name supply only ever puts ``$`` after
a non-empty stem, so canonical names can never collide with a user or
machine variable.  A term can still contain *free* canonical-named
variables (destructure an interned representative and its bound names
fall out free); to keep ``intern`` injective on α-classes the prefix is
escalated (``$cv`` → ``$cvv`` → …) until it clashes with no free variable
of the input.  The free-variable set is α-invariant, so the chosen prefix
is a function of the α-class and the contract survives.

The hash-consing table holds its nodes strongly (that is what keeps child
ids stable); resetting the owning session empties it along with the intern
memo.  Both live on the active :class:`~repro.kernel.state.KernelState`
(via ``Language``'s store properties), so two sessions never share
representatives — re-interning a term inside another session simply
rebuilds its α-class there.
"""

from __future__ import annotations

from typing import Any

from repro.kernel import fv
from repro.kernel.nodespec import Language

__all__ = ["build", "intern"]

_CANON_PREFIX = "$cv"


def build(lang: Language, cls: type, *args: Any) -> Any:
    """Hash-consing constructor: ``cls(*args)``, interned.

    ``args`` are in dataclass field order.  Child terms are keyed by
    identity, so pass children that are themselves ``build``/``intern``
    results to get full structural sharing (unshared children merely
    reduce hits; they never produce wrong results, because the table pins
    every stored node and therefore every child id it keys on).
    """
    return _build(lang, lang.hashcons, cls, args)


def _build(lang: Language, table: dict, cls: type, args: tuple) -> Any:
    """:func:`build` against an already-resolved session table.

    ``_canonicalize`` resolves the active session's table once per walk
    (the property probes the contextvar — too hot for a per-node loop) and
    calls this directly.
    """
    spec = lang.specs[cls]
    child_attrs = spec.child_attrs
    key_parts: list[Any] = [cls]
    for name, value in zip(spec.field_order, args):
        key_parts.append(id(value) if name in child_attrs else value)
    key = tuple(key_parts)
    node = table.get(key)
    if node is None:
        node = cls(*args)
        table[key] = node
        fv.free_vars(lang, node)  # bottom-up: children are already cached
    return node


def intern(lang: Language, term: Any) -> Any:
    """The canonical representative of ``term``'s α-equivalence class.

    ``intern(lang, a) is intern(lang, b)`` exactly when ``a`` and ``b``
    are α-equivalent.  The representative is α-equivalent to ``term`` (its
    binders carry canonical depth-indexed names) and is built through
    :func:`build`, so all representatives share structure maximally.
    """
    memo = lang.intern_cache
    cached = memo.get(term)
    if cached is not None:
        return cached
    rep = _canonicalize(lang, term)
    memo.put(term, rep)
    if rep is not term:
        memo.put(rep, rep)
    return rep


def _canonicalize(lang: Language, root: Any) -> Any:
    """Rebuild ``root`` with depth-canonical binder names, via ``build``.

    Iterative post-order (explicit stack) so arbitrarily deep terms do not
    hit the recursion limit.  A frame carries the renaming environment in
    force at that position and the binder depth, which names any binders
    the node introduces.

    Shared subterms are canonicalized once per (node, depth): a node whose
    cached free-variable set is disjoint from the renaming environment
    canonicalizes identically at every occurrence at the same binder depth,
    so the walk keeps a per-walk memo for exactly those nodes and interning
    a hash-consed DAG costs O(unique nodes × depths), not O(unfolded tree).
    The guard requires the free-variable set to be *already cached* (true
    for anything built through :func:`build` — hash-consed, wire-decoded —
    where it is computed at construction): a plain parse-tree walk stays on
    the historical path, paying only one cache probe per node.
    """
    var_cls = lang.var_cls
    store = lang.store()  # the active session's caches, resolved once per walk
    table = store.hashcons
    fv_cache = store.fv_cache
    free = fv.free_vars(lang, root)
    prefix = _CANON_PREFIX
    while any(name.startswith(prefix) for name in free):
        prefix += "v"
    results: list[Any] = []
    walk_memo: dict[tuple[int, int], Any] = {}
    # Frame: (term, env, depth, expanded?, memo key); env maps original
    # binder names to canonical ones for the binders in scope.
    stack: list[tuple[Any, dict[str, str], int, bool, tuple[int, int] | None]] = [
        (root, {}, 0, False, None)
    ]
    while stack:
        term, env, depth, expanded, memo_key = stack.pop()
        if not expanded:
            if isinstance(term, var_cls):
                results.append(_build(lang, table, var_cls, (env.get(term.name, term.name),)))
                continue
            spec = lang.spec(term)
            if not spec.children:
                results.append(
                    _build(lang, table, type(term), tuple(getattr(term, f) for f in spec.field_order))
                )
                continue
            memo_key = None
            cached_free = fv_cache.get(term)
            if cached_free is not None and (
                not env or all(name not in env for name in cached_free)
            ):
                memo_key = (id(term), depth)
                done = walk_memo.get(memo_key)
                if done is not None:
                    results.append(done)
                    continue
            stack.append((term, env, depth, True, memo_key))
            # Environments for each binder-prefix length.
            envs = [env]
            for offset, binder in enumerate(spec.binder_attrs):
                extended = dict(envs[-1])
                extended[getattr(term, binder)] = f"{prefix}{depth + offset}"
                envs.append(extended)
            for child in reversed(spec.children):
                scope = len(child.binders)
                stack.append((getattr(term, child.attr), envs[scope], depth + scope, False, None))
        else:
            spec = lang.specs[type(term)]
            count = len(spec.children)
            values = results[-count:]
            del results[-count:]
            child_iter = iter(values)
            args = []
            for offset_name in spec.field_order:
                if offset_name in spec.binder_attrs:
                    index = spec.binder_attrs.index(offset_name)
                    args.append(f"{prefix}{depth + index}")
                elif any(child.attr == offset_name for child in spec.children):
                    args.append(next(child_iter))
                else:
                    args.append(getattr(term, offset_name))
            node = _build(lang, table, type(term), tuple(args))
            if memo_key is not None:
                walk_memo[memo_key] = node
            results.append(node)
    return results[-1]
