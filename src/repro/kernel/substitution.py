"""Generic capture-avoiding parallel substitution, driven by node specs.

One engine serves both calculi.  The semantics match the original
per-calculus implementations: mappings apply simultaneously, shadowed names
are dropped at binders, and a binder is renamed (with the global fresh
supply) exactly when it would capture a free variable of some replacement.

Two sharing/efficiency improvements over the originals, both enabled by the
cached free-variable sets of :mod:`repro.kernel.fv`:

* the entry-point scan ``{k: v for k in mapping if k in free_vars(term)}``
  is now an O(1)-amortized cache lookup instead of a full term walk;
* every interior node whose subtree contains no mapped name is returned
  *unchanged* (pointer-shared with the input), so a substitution touching
  one branch of a large term no longer rebuilds — or needlessly renames
  binders in — the untouched branches.

The walk is **iterative** — an explicit work stack driven by the node
specs, like the hoisting pass and the other kernel traversals — so
substitution into ~10k-node-deep programs (``machine/hoist.unhoist``
reconstituting a deep hoisted program, linking a deep component) never
approaches the Python recursion limit.  Binder renaming is folded into the
mapping itself: renaming ``b`` to the fresh ``b'`` pushes the children
under ``b`` with ``mapping ∪ {b ↦ b'}``.  Because the mapping is parallel
and ``b'`` is globally fresh, this is exactly the old rename-then-
substitute composition, in one pass.
"""

from __future__ import annotations

from typing import Any

from repro.common.names import fresh
from repro.kernel import fv
from repro.kernel.nodespec import Language

__all__ = ["subst"]

Substitution = dict[str, Any]


def subst(lang: Language, term: Any, mapping: Substitution) -> Any:
    """Apply the parallel substitution ``mapping`` to ``term``.

    Names not in ``mapping`` are untouched.  The result shares unmodified
    subterms with the input wherever possible.
    """
    if not mapping:
        return term
    fvs = fv.free_vars(lang, term)
    relevant = {k: v for k, v in mapping.items() if k in fvs}
    if not relevant:
        return term
    capturable: set[str] = set()
    for value in relevant.values():
        capturable |= fv.free_vars(lang, value)
    # Resolve the active session's fv cache once per walk: the property
    # probes the contextvar, which is too hot to pay per visited node, and
    # the active state cannot change mid-substitution.
    fv_cache = lang.fv_cache
    var_cls = lang.var_cls

    # Post-order over an explicit stack.  A *visit* frame carries the
    # mapping and capturable set in force at that position; a *build* frame
    # (``work`` is the ``(spec, binder_names)`` pair) pops its children's
    # results off the value stack and rebuilds.
    results: list[Any] = []
    stack: list[tuple[Any, Substitution, set[str], Any]] = [
        (term, relevant, capturable, None)
    ]
    while stack:
        node, current, cap, work = stack.pop()
        if work is not None:
            spec, binder_names = work
            count = len(spec.children)
            values = results[-count:]
            del results[-count:]
            child_iter = iter(values)
            child_attrs = spec.child_attrs
            changed = False
            args: list[Any] = []
            for name in spec.field_order:
                if name in binder_names:
                    value = binder_names[name]
                    changed = changed or value != getattr(node, name)
                elif name in child_attrs:
                    value = next(child_iter)
                    changed = changed or value is not getattr(node, name)
                else:
                    value = getattr(node, name)
                args.append(value)
            results.append(type(node)(*args) if changed else node)
            continue

        if not current:
            results.append(node)  # no substitution in force under this prefix
            continue
        if isinstance(node, var_cls):
            results.append(current.get(node.name, node))
            continue
        fvs = fv_cache.get(node)
        if fvs is None:
            fvs = fv.free_vars(lang, node)
        for key in current:
            if key in fvs:
                break
        else:
            results.append(node)  # no mapped name occurs free: share the subtree
            continue

        spec = lang.spec(node)
        # A non-variable node with a free mapped name necessarily has children.
        binder_names: dict[str, str] = {}
        # maps[k] / caps[k]: mapping and capturable set under the first k
        # binders — shadowed names dropped, renames added.
        maps: list[Substitution] = [current]
        caps: list[set[str]] = [cap]
        for binder in spec.binder_attrs:
            bound = getattr(node, binder)
            if bound in current:
                current = {k: v for k, v in current.items() if k != bound}
            if current and bound in cap:
                renamed = fresh(bound)
                current = dict(current)
                current[bound] = var_cls(renamed)
                cap = cap | {renamed}
                binder_names[binder] = renamed
            else:
                binder_names[binder] = bound
            maps.append(current)
            caps.append(cap)

        stack.append((node, current, cap, (spec, binder_names)))
        for child in reversed(spec.children):
            depth = len(child.binders)
            stack.append((getattr(node, child.attr), maps[depth], caps[depth], None))
    return results[-1]
