"""Generic capture-avoiding parallel substitution, driven by node specs.

One engine serves both calculi.  The semantics match the original
per-calculus implementations: mappings apply simultaneously, shadowed names
are dropped at binders, and a binder is renamed (with the global fresh
supply) exactly when it would capture a free variable of some replacement.

Two sharing/efficiency improvements over the originals, both enabled by the
cached free-variable sets of :mod:`repro.kernel.fv`:

* the entry-point scan ``{k: v for k in mapping if k in free_vars(term)}``
  is now an O(1)-amortized cache lookup instead of a full term walk;
* every interior node whose subtree contains no mapped name is returned
  *unchanged* (pointer-shared with the input), so a substitution touching
  one branch of a large term no longer rebuilds — or needlessly renames
  binders in — the untouched branches.
"""

from __future__ import annotations

from typing import Any

from repro.common.names import fresh
from repro.kernel import fv
from repro.kernel.nodespec import Language

__all__ = ["subst"]

Substitution = dict[str, Any]


def subst(lang: Language, term: Any, mapping: Substitution) -> Any:
    """Apply the parallel substitution ``mapping`` to ``term``.

    Names not in ``mapping`` are untouched.  The result shares unmodified
    subterms with the input wherever possible.
    """
    if not mapping:
        return term
    fvs = fv.free_vars(lang, term)
    relevant = {k: v for k, v in mapping.items() if k in fvs}
    if not relevant:
        return term
    capturable: set[str] = set()
    for value in relevant.values():
        capturable |= fv.free_vars(lang, value)
    # Resolve the active session's fv cache once per walk: the property
    # probes the contextvar, which is too hot to pay per visited node, and
    # the active state cannot change mid-substitution.
    return _subst(lang, lang.fv_cache, term, relevant, capturable)


def _subst(
    lang: Language, fv_cache: Any, term: Any, mapping: Substitution, capturable: set[str]
) -> Any:
    var_cls = lang.var_cls
    if isinstance(term, var_cls):
        return mapping.get(term.name, term)
    fvs = fv_cache.get(term)
    if fvs is None:
        fvs = fv.free_vars(lang, term)
    for key in mapping:
        if key in fvs:
            break
    else:
        return term  # no mapped name occurs free: share the whole subtree

    spec = lang.spec(term)
    # A non-variable node with a free mapped name necessarily has children.
    new_values: dict[str, Any] = {}
    binder_names: dict[str, str] = {}
    # maps[k] is the mapping in force under the first k binders.
    maps: list[Substitution] = [mapping]
    current = mapping
    for position, binder in enumerate(spec.binder_attrs):
        bound = getattr(term, binder)
        if bound in current:
            current = {k: v for k, v in current.items() if k != bound}
        if current and bound in capturable:
            renamed = fresh(bound)
            renaming = {bound: var_cls(renamed)}
            for child in spec.children:
                if binder not in child.binders:
                    continue
                if any(
                    getattr(term, later) == bound
                    for later in child.binders[position + 1 :]
                ):
                    # A later binder of the same name shadows this one for
                    # every occurrence in the child, so there is nothing to
                    # rename there (and renaming would capture).
                    continue
                original = new_values.get(child.attr, getattr(term, child.attr))
                new_values[child.attr] = subst(lang, original, renaming)
            binder_names[binder] = renamed
        else:
            binder_names[binder] = bound
        maps.append(current)

    changed = False
    for child in spec.children:
        inner = maps[len(child.binders)]
        value = new_values.get(child.attr, getattr(term, child.attr))
        if inner:
            value = _subst(lang, fv_cache, value, inner, capturable)
        new_values[child.attr] = value
        if value is not getattr(term, child.attr):
            changed = True
    if not changed and all(
        binder_names[b] == getattr(term, b) for b in spec.binder_attrs
    ):
        return term

    args = []
    for name in spec.field_order:
        if name in binder_names:
            args.append(binder_names[name])
        elif name in new_values:
            args.append(new_values[name])
        else:
            args.append(getattr(term, name))
    return type(term)(*args)
