"""Generic α-equivalence, driven by node specs.

Structural equality up to bound names, for any registered language.  Bound
occurrences are compared through de Bruijn-style level environments; free
occurrences by name.  Telescopic scoping (see
:mod:`repro.kernel.nodespec`) lets one loop interleave child comparisons
with binder introductions for single- and multi-binder nodes alike.
"""

from __future__ import annotations

from typing import Any

from repro.kernel.nodespec import Language

__all__ = ["alpha_equal"]


def alpha_equal(lang: Language, left: Any, right: Any) -> bool:
    """Structural equality of ``left`` and ``right`` up to bound names."""
    return _alpha(lang, left, right, {}, {}, [0])


def _alpha(
    lang: Language,
    left: Any,
    right: Any,
    env_l: dict[str, int],
    env_r: dict[str, int],
    counter: list[int],
) -> bool:
    if left is right and env_l == env_r:
        # Identical objects under identical binder environments compare
        # equal without a traversal — the common case once terms are
        # hash-consed.
        return True
    var_cls = lang.var_cls
    if isinstance(left, var_cls):
        if not isinstance(right, var_cls):
            return False
        level_l, level_r = env_l.get(left.name), env_r.get(right.name)
        if level_l is None and level_r is None:
            return left.name == right.name
        return level_l is not None and level_l == level_r
    if type(left) is not type(right):
        return False
    spec = lang.spec(left)
    for attr in spec.data_attrs:
        if getattr(left, attr) != getattr(right, attr):
            return False
    depth = 0
    cur_l, cur_r = env_l, env_r
    for child in spec.children:
        while depth < len(child.binders):
            binder = spec.binder_attrs[depth]
            index = counter[0]
            counter[0] += 1
            cur_l = dict(cur_l)
            cur_l[getattr(left, binder)] = index
            cur_r = dict(cur_r)
            cur_r[getattr(right, binder)] = index
            depth += 1
        if not _alpha(
            lang, getattr(left, child.attr), getattr(right, child.attr), cur_l, cur_r, counter
        ):
            return False
    return True
