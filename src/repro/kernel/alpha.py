"""Generic α-equivalence, driven by node specs.

Structural equality up to bound names, for any registered language.  Bound
occurrences are compared through de Bruijn-style level environments; free
occurrences by name.  Telescopic scoping (see
:mod:`repro.kernel.nodespec`) lets one loop interleave child comparisons
with binder introductions for single- and multi-binder nodes alike.

The comparison is **iterative** (an explicit work stack of subterm pairs,
like every other kernel traversal), so ~10k-node-deep programs — a deep
hoisted spine reconstituted by ``machine/hoist.unhoist``, say — compare
without touching the Python recursion limit.
"""

from __future__ import annotations

from typing import Any

from repro.kernel.nodespec import Language

__all__ = ["alpha_equal"]


def alpha_equal(lang: Language, left: Any, right: Any) -> bool:
    """Structural equality of ``left`` and ``right`` up to bound names."""
    var_cls = lang.var_cls
    counter = 0
    # Work stack of (left, right, left binder env, right binder env).
    stack: list[tuple[Any, Any, dict[str, int], dict[str, int]]] = [
        (left, right, {}, {})
    ]
    while stack:
        left, right, env_l, env_r = stack.pop()
        if left is right and env_l == env_r:
            # Identical objects under identical binder environments compare
            # equal without a traversal — the common case once terms are
            # hash-consed.
            continue
        if isinstance(left, var_cls):
            if not isinstance(right, var_cls):
                return False
            level_l, level_r = env_l.get(left.name), env_r.get(right.name)
            if level_l is None and level_r is None:
                if left.name != right.name:
                    return False
                continue
            if level_l is None or level_l != level_r:
                return False
            continue
        if type(left) is not type(right):
            return False
        spec = lang.spec(left)
        for attr in spec.data_attrs:
            if getattr(left, attr) != getattr(right, attr):
                return False
        depth = 0
        cur_l, cur_r = env_l, env_r
        for child in spec.children:
            while depth < len(child.binders):
                binder = spec.binder_attrs[depth]
                index = counter
                counter += 1
                cur_l = dict(cur_l)
                cur_l[getattr(left, binder)] = index
                cur_r = dict(cur_r)
                cur_r[getattr(right, binder)] = index
                depth += 1
            stack.append(
                (getattr(left, child.attr), getattr(right, child.attr), cur_l, cur_r)
            )
    return True
