"""Memoized normalization: a WHNF/normal-form cache with context fingerprints.

``whnf`` and ``normalize`` are pure functions of (a) the term, (b) the
*definitions* visible in the context (δ-reduction is the only way a context
influences reduction), and (c) nothing else — assumptions ``x : A`` only
matter insofar as they shadow a definition.  The cache therefore keys on

    (id(term), kind, context_token(ctx))

where :func:`context_token` distills a context down to a small integer that
two contexts share exactly when they expose the same definition objects for
the same names.  Each entry records the reduction steps the original
computation spent, and every hit replays that cost into the caller's
:class:`~repro.kernel.budget.Budget` via ``charge`` — so step counts
(``normalize_counting``) and fuel exhaustion are bit-for-bit identical to
an uncached run, merely cheaper.

Soundness of the identity keys: every entry pins the term it keys on, and
every fingerprint in the token table pins the definition terms whose ids it
mentions, so no keyed id can be recycled while its entry is live.  Token
numbers are never reused across ``reset_caches`` (the counter survives the
clear) so a stale token cached on a long-lived context can never alias a
fresh one.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.kernel.cache import register_cache

__all__ = ["NORMALIZATION_CACHE", "NormalizationCache", "context_token"]

_TOKEN_ATTR = "_kernel_ctx_token"
_DEFS_ATTR = "_kernel_defs"
_PARENT_ATTR = "_kernel_parent"

#: fingerprint -> (token, pinned definition terms)
_token_table: dict[tuple, tuple[int, tuple]] = {}
#: id(visible-defs dict) -> (token, pinned dict) — O(1) fast path for the
#: common case where an extension shares its parent's defs map unchanged.
_defs_tokens: dict[int, tuple[int, dict]] = {}
_token_counter = itertools.count(1)


class _TokenTable:
    """Registry adapter: clearing drops fingerprints but keeps the counter."""

    name = "kernel.ctx_tokens"

    def clear(self) -> None:
        _token_table.clear()
        _defs_tokens.clear()

    def __len__(self) -> int:
        return len(_token_table)


register_cache(_TokenTable())


def _visible_defs(ctx: Any) -> dict[str, Any]:
    """The shadowing-resolved ``name -> definition`` map of ``ctx``.

    Derived incrementally: contexts built by ``extend``/``define`` carry a
    parent link, so a chain of extensions walks up to the nearest ancestor
    with a cached map and replays the missing entries — O(1) amortized per
    context, and extensions that do not touch definitions *share* their
    parent's dict object.  Contexts constructed directly (e.g. ``prefix``)
    fall back to a full scan.  The maps are never mutated once cached.
    """
    cached = getattr(ctx, _DEFS_ATTR, None)
    if cached is not None:
        return cached
    # Walk up to the nearest ancestor with a cached map, recording the
    # (child, binding-added) steps needed to replay back down.
    steps: list[tuple[Any, Any]] = []
    current = ctx
    while getattr(current, _DEFS_ATTR, None) is None:
        link = getattr(current, _PARENT_ATTR, None)
        if link is None:
            defs: dict[str, Any] = {}
            for binding in current.entries:
                if binding.definition is not None:
                    defs[binding.name] = binding.definition
                elif binding.name in defs:
                    del defs[binding.name]  # assumption shadows a definition
            object.__setattr__(current, _DEFS_ATTR, defs)
            break
        steps.append((current, link[1]))
        current = link[0]
    defs = getattr(current, _DEFS_ATTR)
    for child, binding in reversed(steps):
        if binding.definition is not None:
            defs = {**defs, binding.name: binding.definition}
        elif binding.name in defs:
            defs = {k: v for k, v in defs.items() if k != binding.name}
        # else: the child shares its parent's dict object unchanged.
        object.__setattr__(child, _DEFS_ATTR, defs)
    return defs


def context_token(ctx: Any) -> int:
    """A small integer identifying ``ctx``'s visible definitions.

    Two contexts get the same token iff, after shadowing, they map the same
    names to the same definition *objects*.  The token is cached on the
    context instance (contexts are immutable), so repeated calls are O(1);
    first calls on extension chains are O(1) amortized via
    :func:`_visible_defs`.
    """
    token = getattr(ctx, _TOKEN_ATTR, None)
    if token is not None:
        return token
    visible = _visible_defs(ctx)
    hit = _defs_tokens.get(id(visible))
    if hit is not None:
        token = hit[0]
    else:
        fingerprint = tuple(sorted((name, id(term)) for name, term in visible.items()))
        entry = _token_table.get(fingerprint)
        if entry is None:
            entry = (next(_token_counter), tuple(visible.values()))
            _token_table[fingerprint] = entry
        token = entry[0]
        _defs_tokens[id(visible)] = (token, visible)  # pin the dict: id stays valid
    object.__setattr__(ctx, _TOKEN_ATTR, token)
    return token


class NormalizationCache:
    """``(id(term), kind, token) -> (term, result, steps)``.

    ``kind`` distinguishes e.g. ``"cc.whnf"`` from ``"cc.nf"``.  The stored
    term pins the keyed id.  The cache is bounded: when it grows past
    ``max_entries`` it is simply emptied — normalization results are cheap
    to recompute relative to the bookkeeping of a smarter eviction policy.
    """

    __slots__ = ("name", "max_entries", "_entries")

    def __init__(self, name: str = "kernel.normalization", max_entries: int = 262_144) -> None:
        self.name = name
        self.max_entries = max_entries
        self._entries: dict[tuple[int, str, int], tuple[Any, Any, int]] = {}

    def lookup(self, kind: str, term: Any, token: int) -> tuple[Any, int] | None:
        """The cached (result, steps) for ``term`` under ``token``, or None."""
        entry = self._entries.get((id(term), kind, token))
        if entry is None:
            return None
        return entry[1], entry[2]

    def store(self, kind: str, term: Any, token: int, result: Any, steps: int) -> None:
        """Record ``result`` (reached in ``steps`` reduction steps)."""
        if len(self._entries) >= self.max_entries:
            self._entries.clear()
        self._entries[(id(term), kind, token)] = (term, result, steps)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


NORMALIZATION_CACHE = register_cache(NormalizationCache())
