"""Memoized normalization: a WHNF/normal-form cache with context fingerprints.

``whnf`` and ``normalize`` are pure functions of (a) the term, (b) the
*definitions* visible in the context (δ-reduction is the only way a context
influences reduction), and (c) nothing else — assumptions ``x : A`` only
matter insofar as they shadow a definition.  The cache therefore keys on

    (id(term), kind, context_token(ctx))

where :func:`context_token` distills a context down to a small integer that
two contexts share exactly when they expose the same definition objects for
the same names.  Each entry records the reduction steps the original
computation spent, and every hit replays that cost into the caller's
:class:`~repro.kernel.budget.Budget` via ``charge`` — so step counts
(``normalize_counting``) and fuel exhaustion are bit-for-bit identical to
an uncached run, merely cheaper.

``kind`` carries the *engine* as well as the judgment: the NbE machine
(:mod:`repro.kernel.nbe`) stores under ``"cc.whnf"``/``"cc.nf"`` while the
substitution oracle stores under ``"cc.whnf.subst"``/``"cc.nf.subst"`` (and
likewise for CC-CC), so the two engines never exchange results or recorded
fuel — each replays exactly the cost model it computes under.

The fingerprinting machinery is generic (:class:`ContextTokenizer`): a
token is derived from a shadowing-resolved ``name -> value`` map computed
incrementally along the parent links contexts carry, parameterized by how
one binding transforms the map.  This module instantiates it for the
definitions-only view reduction observes; :mod:`repro.kernel.judgment`
instantiates it for the full-binding view typing observes.

Session scoping: the cache and the fingerprint *tables* live on the active
:class:`~repro.kernel.state.KernelState` — one set per session, so sessions
never exchange entries.  Each tokenizer's token **counter** stays
process-global and monotone (it survives every clear and is shared by all
sessions), which is what keeps identity keys sound: tokens are cached on
context instances, and a context that outlives a reset — or that is
observed by a second session — can never carry a token that aliases a
different fingerprint anywhere, because no token number is ever issued
twice.

Soundness of the identity keys: every entry pins the term it keys on, and
every fingerprint in a token table pins the value objects whose ids it
mentions, so no keyed id can be recycled while its entry is live.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.kernel.cache import ActiveCacheProxy
from repro.kernel.state import current_state, register_tokenizer

__all__ = [
    "NORMALIZATION_CACHE",
    "ContextTokenizer",
    "NormalizationCache",
    "context_token",
    "head_is_weak_normal",
    "memoized_reduction",
    "normalization_cache",
]

_PARENT_ATTR = "_kernel_parent"


class ContextTokenizer:
    """Incremental context fingerprints over parent-linked contexts.

    A tokenizer owns a view of contexts as shadowing-resolved ``name ->
    value`` maps: ``derive_root`` computes the map of a context by full
    scan (the fallback for contexts built directly), ``derive_step``
    transforms a parent's map for one appended binding — returning the
    *same* dict object when the binding is invisible to the view, which
    lets extension chains share maps.  Maps are cached on the context
    instances (``map_attr``) and never mutated; tokens likewise
    (``token_attr``).  Two contexts receive the same token iff their maps
    pair the same names with the same value *objects*.

    The fingerprint tables live on the active session's
    :class:`~repro.kernel.state.TokenTable`; the token counter is one
    process-global monotone sequence per tokenizer, so clearing a table
    (session reset) can never lead to a token being reused.
    """

    __slots__ = ("name", "_token_attr", "_map_attr", "_derive_root", "_derive_step",
                 "_counter")

    def __init__(
        self,
        name: str,
        token_attr: str,
        map_attr: str,
        derive_root: Callable[[Any], dict],
        derive_step: Callable[[dict, Any], dict],
    ) -> None:
        self.name = name
        self._token_attr = token_attr
        self._map_attr = map_attr
        self._derive_root = derive_root
        self._derive_step = derive_step
        self._counter = itertools.count(1)
        register_tokenizer(self)

    def visible(self, ctx: Any) -> dict[str, Any]:
        """The view map of ``ctx``, derived incrementally.

        Walks up to the nearest ancestor with a cached map and replays the
        missing (child, binding) steps back down — O(1) amortized per
        context for ``extend``/``define`` chains, full scan otherwise.
        The map is a fact about the context alone (no session state), so
        caching it on the instance is sound across sessions.
        """
        map_attr = self._map_attr
        cached = getattr(ctx, map_attr, None)
        if cached is not None:
            return cached
        steps: list[tuple[Any, Any]] = []
        current = ctx
        while getattr(current, map_attr, None) is None:
            link = getattr(current, _PARENT_ATTR, None)
            if link is None:
                object.__setattr__(current, map_attr, self._derive_root(current))
                break
            steps.append((current, link[1]))
            current = link[0]
        visible = getattr(current, map_attr)
        for child, binding in reversed(steps):
            visible = self._derive_step(visible, binding)
            object.__setattr__(child, map_attr, visible)
        return visible

    def token(self, ctx: Any) -> int:
        """The small integer identifying ``ctx``'s view; cached on ``ctx``."""
        token = getattr(ctx, self._token_attr, None)
        if token is not None:
            return token
        visible = self.visible(ctx)
        tables = current_state().token_table(self.name)
        hit = tables.map_tokens.get(id(visible))
        if hit is not None:
            token = hit[0]
        else:
            fingerprint = tuple(sorted((name, id(value)) for name, value in visible.items()))
            entry = tables.table.get(fingerprint)
            if entry is None:
                entry = (next(self._counter), tuple(visible.values()))
                tables.table[fingerprint] = entry
                # Reverse index for the persistent tier: it re-derives the
                # *content* this token fingerprints.  Registered only at
                # token creation — every later holder shares the map.
                tables.by_token[entry[0]] = visible
            token = entry[0]
            tables.map_tokens[id(visible)] = (token, visible)  # pin: id stays valid
        object.__setattr__(ctx, self._token_attr, token)
        return token


def _defs_root(ctx: Any) -> dict[str, Any]:
    defs: dict[str, Any] = {}
    for binding in ctx.entries:
        if binding.definition is not None:
            defs[binding.name] = binding.definition
        elif binding.name in defs:
            del defs[binding.name]  # assumption shadows a definition
    return defs


def _defs_step(defs: dict[str, Any], binding: Any) -> dict[str, Any]:
    if binding.definition is not None:
        return {**defs, binding.name: binding.definition}
    if binding.name in defs:
        return {key: value for key, value in defs.items() if key != binding.name}
    return defs  # invisible to reduction: share the parent's dict object


_DEFS_TOKENS = ContextTokenizer(
    "kernel.ctx_tokens", "_kernel_ctx_token", "_kernel_defs", _defs_root, _defs_step
)


def context_token(ctx: Any) -> int:
    """A small integer identifying ``ctx``'s visible definitions.

    Two contexts get the same token iff, after shadowing, they map the same
    names to the same definition *objects* — the context slice δ-reduction
    (and therefore normalization and equivalence) can observe.
    """
    return _DEFS_TOKENS.token(ctx)


class NormalizationCache:
    """``(id(term), kind, token) -> (term, result, steps)``.

    ``kind`` distinguishes e.g. ``"cc.whnf"`` from ``"cc.nf"``.  The stored
    term pins the keyed id.  The cache is bounded: when it grows past
    ``max_entries`` it is simply emptied — normalization results are cheap
    to recompute relative to the bookkeeping of a smarter eviction policy.
    ``hits`` counts successful lookups, for the structured result objects
    of :mod:`repro.api`.

    ``persistent`` (installed by ``KernelState.attach_memo_store``, None
    otherwise) is the content-keyed on-disk tier: consulted on an
    in-memory miss, written through on every store.  A persistent hit
    warms the in-memory entry (so identity-keyed lookups take over) and
    carries recorded fuel exactly like a local entry; it is *not*
    re-persisted, and it is counted on the tier, not in ``hits`` — the
    in-memory hit counters keep their historical meaning.
    """

    __slots__ = ("name", "max_entries", "hits", "persistent", "_entries")

    def __init__(self, name: str = "kernel.normalization", max_entries: int = 262_144) -> None:
        self.name = name
        self.max_entries = max_entries
        self.hits = 0
        self.persistent: Any = None
        self._entries: dict[tuple[int, str, int], tuple[Any, Any, int]] = {}

    def lookup(self, kind: str, term: Any, token: int) -> tuple[Any, int] | None:
        """The cached (result, steps) for ``term`` under ``token``, or None."""
        entry = self._entries.get((id(term), kind, token))
        if entry is None:
            tier = self.persistent
            if tier is None:
                return None
            # Persistence is an accelerator: any tier failure is a counted
            # miss, never an exception on the normalization hot path.
            try:
                found = tier.load(kind, term, token)
            except Exception:
                tier.errors += 1
                found = None
            if found is None:
                return None
            result, steps = found
            if len(self._entries) >= self.max_entries:
                self._entries.clear()
            self._entries[(id(term), kind, token)] = (term, result, steps)
            return result, steps
        self.hits += 1
        return entry[1], entry[2]

    def store(self, kind: str, term: Any, token: int, result: Any, steps: int) -> None:
        """Record ``result`` (reached in ``steps`` reduction steps)."""
        if len(self._entries) >= self.max_entries:
            self._entries.clear()
        self._entries[(id(term), kind, token)] = (term, result, steps)
        tier = self.persistent
        if tier is not None:
            try:
                tier.save(kind, term, token, result, steps)
            except Exception:
                tier.errors += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


def normalization_cache() -> NormalizationCache:
    """The active session's normalization cache."""
    return current_state().normalization


#: Back-compat name: the active session's normalization cache, as a proxy.
NORMALIZATION_CACHE = ActiveCacheProxy(lambda state: state.normalization)


def memoized_reduction(ctx: Any, term: Any, budget: Any, kind: str, compute: Callable) -> Any:
    """Run ``compute(ctx, term, budget)`` through the normalization memo.

    The one definition of the memo discipline — token, fuel-replaying
    lookup, store — shared by both calculi's reduction wrappers (NbE and
    substitution-oracle alike), so no engine can desynchronize on it.
    """
    cache = current_state().normalization
    token = context_token(ctx)
    hit = cache.lookup(kind, term, token)
    if hit is not None:
        result, steps = hit
        budget.charge(steps)
        return result
    before = budget.spent
    result = compute(ctx, term, budget)
    cache.store(kind, term, token, result, budget.spent - before)
    return result


def head_is_weak_normal(ctx: Any, term: Any, var_cls: type, active: tuple) -> bool:
    """Is ``term`` already weak-head normal (no memo round-trip needed)?

    Fast path for the overwhelmingly common cases: a neutral variable
    needs one context probe, and non-``active`` heads cannot reduce.
    """
    if isinstance(term, var_cls):
        binding = ctx.lookup(term.name)
        return binding is None or binding.definition is None
    return not isinstance(term, active)
