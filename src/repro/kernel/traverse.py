"""Generic, recursion-free term traversals.

These replace the per-calculus recursive ``subterms``/``term_size``
implementations; explicit stacks keep them safe on pathologically deep
terms (left-nested application spines, long ``succ`` chains) where Python's
recursion limit would otherwise trip.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.kernel.nodespec import Language

__all__ = ["subterms", "term_size"]


def subterms(lang: Language, term: Any) -> Iterator[Any]:
    """Pre-order iterator over ``term`` and all of its subterms."""
    stack = [term]
    while stack:
        node = stack.pop()
        yield node
        spec = lang.spec(node)
        if spec.children:
            for child in reversed(spec.children):
                stack.append(getattr(node, child.attr))


def term_size(lang: Language, term: Any) -> int:
    """Number of AST nodes in ``term``."""
    count = 0
    stack = [term]
    while stack:
        node = stack.pop()
        count += 1
        spec = lang.spec(node)
        for child in spec.children:
            stack.append(getattr(node, child.attr))
    return count
