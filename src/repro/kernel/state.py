"""Session-scoped kernel state: every mutable registry, owned by one object.

Historically each kernel cache — the hash-consing tables, the cached
free-variable sets, the intern memos, the whnf/normalize memo, the judgment
cache, the context-token fingerprint tables, and the fresh-name counter —
was a module-level global, and ``reset_fresh_counter()`` nuked all of them
at once.  That made the kernel impossible to shard: there was no unit of
isolation two independent workloads could own.

:class:`KernelState` is that unit.  One instance owns *all* mutable kernel
state, so two states can run interleaved workloads (on one thread or on
several) with zero cross-talk and results byte-identical to solo runs:

* a private fresh-name counter (:meth:`fresh_index`) — interleaving two
  states draws the same names each would draw alone;
* one :class:`LanguageStore` per calculus (fv cache, intern memo,
  hash-consing table);
* the normalization and judgment caches with their fuel-replay entries;
* one :class:`TokenTable` per registered context tokenizer — the
  fingerprint maps are per-state, while each tokenizer's token *counter*
  stays process-global and monotone, so a token cached on a context object
  by one state can never alias a different fingerprint in another state;
* the preferred reduction engine and default fuel, which the ``repro.api``
  session layer reads.

The *active* state is carried in a :mod:`contextvars` context variable:
:func:`current_state` returns it, falling back to a lazily-created
process-default state.  Because each thread starts from a fresh context,
activating a state on one thread never leaks into another — which is
exactly the isolation the sharding roadmap item needs.  Every legacy
entrypoint (``repro.cc.whnf``, ``repro.cccc.infer``, ``fresh`` …) reads
``current_state()`` and therefore behaves as a thin shim over the
process-default session when no session is active.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.kernel.cache import DictCache, TermCache

__all__ = [
    "ENGINES",
    "KernelState",
    "LanguageStore",
    "TokenTable",
    "activate",
    "bootstrap_worker_state",
    "current_state",
    "default_state",
    "register_language",
    "register_tokenizer",
    "validate_engine",
]

#: The reduction engines a session can select.  The one list both
#: ``KernelState`` and ``repro.api`` validate against, so the two entry
#: points can never disagree on which engines exist.
ENGINES = ("nbe", "subst")


def validate_engine(engine: str) -> str:
    """``engine`` if it names a known reduction engine; ValueError otherwise."""
    if engine not in ENGINES:
        expected = " or ".join(repr(name) for name in ENGINES)
        raise ValueError(f"unknown engine {engine!r} (expected {expected})")
    return engine

#: Every Language ever constructed (calculi register at import time), so a
#: fresh state can report zeroed stats for all of them before first use.
_LANGUAGES: list[Any] = []

#: Every ContextTokenizer ever constructed, for the same reason.
_TOKENIZERS: list[Any] = []


def register_language(lang: Any) -> Any:
    """Record ``lang`` so every state lazily materializes a store for it."""
    _LANGUAGES.append(lang)
    return lang


def register_tokenizer(tokenizer: Any) -> Any:
    """Record ``tokenizer`` so every state materializes its token tables."""
    _TOKENIZERS.append(tokenizer)
    return tokenizer


class TokenTable:
    """Per-state fingerprint tables of one :class:`ContextTokenizer`.

    ``table`` maps a context fingerprint to ``(token, pinned values)``;
    ``map_tokens`` is the O(1) ``id(visible map) -> (token, pinned map)``
    path; ``by_token`` is the reverse index ``token -> visible map``, which
    the persistent memo tier uses to translate a session-local token back
    into the content it fingerprints.  Clearing drops all three (the pins
    die with them) but never touches the owning tokenizer's counter, so
    tokens are never reused — within a state or across states.
    """

    __slots__ = ("name", "table", "map_tokens", "by_token")

    def __init__(self, name: str) -> None:
        self.name = name
        self.table: dict[tuple, tuple[int, tuple]] = {}
        self.map_tokens: dict[int, tuple[int, dict]] = {}
        self.by_token: dict[int, dict] = {}

    def clear(self) -> None:
        self.table.clear()
        self.map_tokens.clear()
        self.by_token.clear()

    def __len__(self) -> int:
        return len(self.table)


class LanguageStore:
    """One calculus's identity-keyed caches, owned by a :class:`KernelState`."""

    __slots__ = ("fv_cache", "intern_cache", "hashcons", "hash_cache", "by_hash", "caches")

    def __init__(self, lang_name: str) -> None:
        self.fv_cache = TermCache(f"{lang_name}.fv")
        self.intern_cache = TermCache(f"{lang_name}.intern")
        #: (cls, *field keys) -> interned node; owned by repro.kernel.intern.
        self.hashcons: dict[tuple, Any] = {}
        #: id(term) -> 128-bit content hash; owned by repro.wire.codec.  Weak
        #: on the keyed term, so hashing transient terms never pins them.
        self.hash_cache = TermCache(f"{lang_name}.hash")
        #: content hash -> node: the wire decoder's adoption index.  Pins its
        #: nodes strongly (like the hashcons table whose lifetime it shares).
        self.by_hash: dict[bytes, Any] = {}
        self.caches: tuple[Any, ...] = (
            self.fv_cache,
            self.intern_cache,
            DictCache(f"{lang_name}.hashcons", self.hashcons),
            self.hash_cache,
            DictCache(f"{lang_name}.by_hash", self.by_hash),
        )


class KernelState:
    """All mutable kernel state for one isolated workload.

    Everything the engines can read or write lives here; two states never
    share an entry, a token table, or a name counter.  The one deliberate
    exception is each tokenizer's token *counter* (process-global), which
    only ever makes tokens unique — it carries no workload state.
    """

    def __init__(
        self,
        name: str = "session",
        engine: str = "nbe",
        fuel: int | None = None,
    ) -> None:
        validate_engine(engine)
        # Imported lazily: this module sits below everything (names, memo,
        # judgment, budget) in the import graph, so it must not import any
        # of them at module scope.
        from repro.kernel.budget import DEFAULT_FUEL
        from repro.kernel.judgment import JudgmentCache
        from repro.kernel.memo import NormalizationCache

        if fuel is None:
            fuel = DEFAULT_FUEL

        self.name = name
        self.engine = engine
        self.fuel = fuel
        self.normalization = NormalizationCache()
        self.judgments = JudgmentCache()
        #: The attached persistent memo tier (repro.wire.persist), or None.
        self.persistent: Any = None
        self._counter = itertools.count(1)
        self._stores: dict[str, LanguageStore] = {}
        self._token_tables: dict[str, TokenTable] = {}
        self._extra: list[Any] = []
        self._reset_lock = threading.Lock()

    # -- state accessed by the engines --------------------------------------

    def fresh_index(self) -> int:
        """The next fresh-name suffix.  Atomic under the GIL (one C call)."""
        return next(self._counter)

    def store(self, lang: Any) -> LanguageStore:
        """The :class:`LanguageStore` for ``lang``, created on first use.

        ``setdefault`` (atomic under the GIL) arbitrates first use from
        concurrent threads sharing one state: both racers get the same
        store, never a private orphan that stats/reset would miss.
        """
        found = self._stores.get(lang.name)
        if found is None:
            found = self._stores.setdefault(lang.name, LanguageStore(lang.name))
        return found

    def token_table(self, name: str) -> TokenTable:
        """The :class:`TokenTable` for tokenizer ``name``, created on first use."""
        found = self._token_tables.get(name)
        if found is None:
            found = self._token_tables.setdefault(name, TokenTable(name))
        return found

    def register(self, cache: Any) -> Any:
        """Register an extra cache (anything with ``clear``/``name``/``len``)."""
        self._extra.append(cache)
        return cache

    # -- lifecycle ----------------------------------------------------------

    def caches(self) -> list[Any]:
        """Every cache this state owns (stores materialized for all calculi)."""
        for lang in _LANGUAGES:
            self.store(lang)
        out: list[Any] = []
        for store in self._stores.values():
            out.extend(store.caches)
        for tokenizer in _TOKENIZERS:
            out.append(self.token_table(tokenizer.name))
        out.append(self.normalization)
        out.append(self.judgments)
        out.extend(self._extra)
        return out

    def clear_caches(self) -> None:
        """Empty every cache, keeping the fresh-name counter running."""
        for cache in self.caches():
            cache.clear()

    def reset(self) -> None:
        """Return this state to a cold, deterministic zero.

        Restarts the fresh-name counter *and* clears every cache: cached
        results may embed fresh names issued before the reset, and keeping
        them would make runs depend on execution history.  Only this
        state's caches are touched — sibling states stay warm.  An attached
        persistent memo tier is flushed and **detached** (the on-disk store
        itself is append-only and survives): a reset state holds no handle
        to any cross-session storage, which keeps tests hermetic.  Service
        policy differs deliberately — the executor's ``reset`` job
        re-attaches the worker's configured store afterwards.
        """
        with self._reset_lock:
            self._counter = itertools.count(1)
            self.detach_memo_store()
            self.clear_caches()

    def attach_memo_store(self, store: Any) -> Any:
        """Attach a persistent memo tier backed by ``store`` (path or store).

        ``store`` is a :class:`repro.wire.persist.PersistentMemoStore` or a
        filesystem path one is opened at.  From then on the normalization
        cache consults the tier on every in-memory miss and writes every
        stored entry through to it; hits replay their recorded fuel, so a
        persisted hit is bit-identical to a cold computation.  Returns the
        installed :class:`~repro.wire.persist.PersistentTier`.
        """
        from repro.wire.persist import PersistentMemoStore, PersistentTier

        if not isinstance(store, PersistentMemoStore):
            store = PersistentMemoStore(store)
        tier = PersistentTier(store, self)
        self.persistent = tier
        self.normalization.persistent = tier
        return tier

    def detach_memo_store(self) -> Any:
        """Detach the persistent tier (flushing buffered writes); None-safe.

        Returns the detached tier (its store stays open — callers that
        opened the store close it) or None if nothing was attached.
        """
        tier = self.persistent
        if tier is None:
            return None
        self.persistent = None
        self.normalization.persistent = None
        tier.store.flush()
        return tier

    def stats(self) -> dict[str, int]:
        """Entry counts per cache, for benchmarks and diagnostics."""
        return {cache.name: len(cache) for cache in self.caches()}

    def hit_counts(self) -> dict[str, int]:
        """Cumulative cache hits for the caches that track them."""
        return {
            self.normalization.name: self.normalization.hits,
            self.judgments.name: self.judgments.hits,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelState({self.name!r}, engine={self.engine!r})"


# --------------------------------------------------------------------------
# The active state.
# --------------------------------------------------------------------------

_ACTIVE: contextvars.ContextVar[KernelState | None] = contextvars.ContextVar(
    "repro_kernel_state", default=None
)
_DEFAULT: KernelState | None = None
_DEFAULT_LOCK = threading.Lock()


def default_state() -> KernelState:
    """The process-default state every legacy entrypoint runs against."""
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = KernelState("default")
    return _DEFAULT


def bootstrap_worker_state(
    name: str,
    engine: str = "nbe",
    fuel: int | None = None,
    memo_store: Any = None,
) -> KernelState:
    """Install a pristine process-default state — the worker-side bootstrap.

    A pool worker forked from a warm parent inherits the parent's default
    state wholesale: its caches, its fresh-name counter position, its hit
    counters.  Serving jobs against that would make worker results depend
    on parent execution history and re-report the parent's counters in
    every pool-stats aggregation.  This swaps in a brand-new
    :class:`KernelState` as the process default (and deactivates any
    inherited active state), so the worker's session — built over the
    returned state — and the legacy shims observe one cold, deterministic
    world, and its counters are exactly the work this worker performed.

    ``memo_store`` (a path, or an opened store) attaches the pool's shared
    persistent memo tier: the worker opens its *own* connection to the
    store (SQLite WAL arbitrates cross-process readers/writers) and batches
    its write-backs in its own append transactions, so the hot path never
    contends on a lock with sibling workers.
    """
    global _DEFAULT
    state = KernelState(name, engine=engine, fuel=fuel)
    if memo_store is not None:
        state.attach_memo_store(memo_store)
    with _DEFAULT_LOCK:
        _DEFAULT = state
    # A fork can also inherit a contextvar pointing at a parent session;
    # clear it so current_state() resolves to the fresh default here.
    _ACTIVE.set(None)
    return state


def current_state() -> KernelState:
    """The state in force for this thread/context (default when none is)."""
    state = _ACTIVE.get()
    return state if state is not None else default_state()


@contextmanager
def activate(state: KernelState) -> Iterator[KernelState]:
    """Make ``state`` the active kernel state within the ``with`` body.

    Context-variable scoped: nests correctly, restores the previous state
    on exit, and never leaks across threads (each thread starts from a
    fresh context, so a state activated here is invisible elsewhere unless
    that thread activates it too).
    """
    token = _ACTIVE.set(state)
    try:
        yield state
    finally:
        _ACTIVE.reset(token)
