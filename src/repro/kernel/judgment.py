"""Judgment-level memoization: typing tokens and a fuel-replaying cache.

Typing judgments (``infer``, ``check``, ``infer_universe``) and the
equivalence judgment are pure functions of the subject term(s) and the
*visible bindings* of the context, so both type checkers memoize them the
same way :mod:`repro.kernel.memo` memoizes normalization: identity keys
plus a small context fingerprint, with exact fuel replay on every hit so
``Budget`` accounting and fuel exhaustion are byte-identical to an
uncached run.

Two tokens exist because the two judgments observe different slices of
the context:

* :func:`repro.kernel.memo.context_token` — *definitions only*.  Reduction
  (and therefore equivalence) can see the context exclusively through
  δ-steps, so assumptions are irrelevant beyond the shadowing they cause.
* :func:`typing_token` (here) — the *full* shadowing-resolved
  ``name -> binding`` map.  Typing reads assumption types through [Var],
  so two contexts are interchangeable for ``infer`` exactly when they
  resolve every name to the same binding object.

Both are instances of the same :class:`~repro.kernel.memo.ContextTokenizer`
machinery, so the pinning/parent-link/reset discipline is shared, not
duplicated.

Only *successful* judgments are cached.  A failing judgment re-runs from
scratch, which trivially reproduces the original ``TypeCheckError`` — and
because every cached sub-judgment replays its recorded fuel, the re-run
spends exactly the steps the first run did.
"""

from __future__ import annotations

from typing import Any

from repro.kernel.cache import ActiveCacheProxy
from repro.kernel.memo import ContextTokenizer
from repro.kernel.state import current_state

__all__ = ["JUDGMENT_CACHE", "JudgmentCache", "judgment_cache", "typing_token"]


def _bindings_root(ctx: Any) -> dict[str, Any]:
    return {binding.name: binding for binding in ctx.entries}


def _bindings_step(bindings: dict[str, Any], binding: Any) -> dict[str, Any]:
    # Every binding is visible to typing, so extension never shares maps.
    return {**bindings, binding.name: binding}


_TYPING_TOKENS = ContextTokenizer(
    "kernel.typing_tokens",
    "_kernel_typing_token",
    "_kernel_bindings",
    _bindings_root,
    _bindings_step,
)


def typing_token(ctx: Any) -> int:
    """A small integer identifying ``ctx``'s visible bindings.

    Two contexts get the same token iff, after shadowing, they resolve the
    same names to the same binding *objects* — the condition under which
    every typing judgment behaves identically.  Cached on the context
    instance, so repeated calls are O(1).
    """
    return _TYPING_TOKENS.token(ctx)


class JudgmentCache:
    """``(kind, id(subject), id(extra), token) -> (verdict, steps)``.

    ``kind`` distinguishes judgments (``"cc.infer"``, ``"cccc.check"``,
    ``"cc.equiv"``, …).  ``extra`` is the second term of binary judgments
    (the expected type of ``check``, the right side of ``equivalent``);
    ``None`` for unary ones.  Each entry pins the terms it keys on and
    records the reduction steps the original computation spent; hits
    replay that cost into the caller's ``Budget``.  Bounded the same way
    as the normalization cache: past ``max_entries`` it is emptied —
    judgments are cheap to recompute relative to eviction bookkeeping.
    """

    __slots__ = ("name", "max_entries", "hits", "_entries")

    def __init__(self, name: str = "kernel.judgments", max_entries: int = 262_144) -> None:
        self.name = name
        self.max_entries = max_entries
        self.hits = 0
        self._entries: dict[tuple, tuple[Any, Any, Any, int]] = {}

    def lookup(self, kind: str, subject: Any, extra: Any, token: int) -> tuple[Any, int] | None:
        """The cached (verdict, steps) for the judgment, or None."""
        entry = self._entries.get((kind, id(subject), 0 if extra is None else id(extra), token))
        if entry is None:
            return None
        self.hits += 1
        return entry[2], entry[3]

    def store(
        self, kind: str, subject: Any, extra: Any, token: int, verdict: Any, steps: int
    ) -> None:
        """Record ``verdict`` (reached spending ``steps`` reduction steps)."""
        if len(self._entries) >= self.max_entries:
            self._entries.clear()
        key = (kind, id(subject), 0 if extra is None else id(extra), token)
        self._entries[key] = (subject, extra, verdict, steps)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


def judgment_cache() -> JudgmentCache:
    """The active session's judgment cache."""
    return current_state().judgments


#: Back-compat name: the active session's judgment cache, as a proxy.
JUDGMENT_CACHE = ActiveCacheProxy(lambda state: state.judgments)
