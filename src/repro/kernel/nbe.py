"""Normalization by evaluation: an environment machine shared by both calculi.

The substitution-based reducers of ``cc/reduce.py`` and ``cccc/reduce.py``
pay for every δ/ζ/β contraction with a tree rewrite: ``subst1`` copies and
re-walks the redex body, which makes *cold* normalization quadratic on deep
β-redex chains (each step walks what the previous steps built).  This module
replaces that with the classic environment-machine discipline of Accattoli
et al. ("Closure Conversion, Flat Environments, and the Complexity of
Abstract Machines"): instead of substituting eagerly, an evaluator threads
an **environment** mapping bound names to **thunks** — unevaluated
``(term, env)`` closures forced at most once — and reads results back into
syntax only at the end (quotation).

The design is *glued* NbE over the named term representation:

* **Semantic values are ``(term, env, spine)`` triples.**  ``term`` is
  weak-head-normal syntax whose free variables are interpreted by ``env``
  (a ``name -> Thunk`` dict); ``spine`` is the stack of eliminations stuck
  on a neutral head, innermost first.  There is no separate value AST — the
  node classes of the calculus itself serve, which keeps the engine fully
  spec-driven (:mod:`repro.kernel.nodespec`) and zero-copy for the parts of
  a term evaluation never touches.
* **Thunks memoize.**  A bound argument is evaluated at most once no matter
  how many times the binder's variable occurs (call-by-need); forcing is
  in-machine (an update marker on the frame stack), so deep chains of
  pending bindings never recurse in Python.
* **The machine is iterative.**  One explicit frame stack holds both
  elimination contexts and thunk-update markers; 10k-deep redex chains
  reduce within constant Python stack depth.
* **Quotation freshens binders only on capture.**  Reading a binder back
  re-uses its source name unless that name occurs free in the residual of
  some environment value that could flow under it (tracked by per-thunk
  free-name sets), in which case a globally fresh name is drawn — exactly
  the cases in which the substitution engine would have α-renamed.
* **δ-unfolding sees the same context slice** as the substitution engine:
  definitions are looked up through the caller's context, and a definition's
  own text is evaluated under the *binder-neutral* fraction of the current
  environment, so a binder that shadows a δ-definition masks it inside its
  scope (matching ``convert._shadow`` and the memo-token discipline of
  :mod:`repro.kernel.memo`).

Budget accounting: the machine spends exactly one unit of the caller's
:class:`~repro.kernel.budget.Budget` per δ/ζ/β/π/ι contraction — the same
axioms the substitution engine charges — so fuel exhaustion still guards
non-termination and warm cache hits replay deterministically.  *Step
counts* of full normalization differ from the substitution engine's
(call-by-need performs each contraction once; the oracle's memo-replay
semantics count per occurrence), which is why ``normalize_counting`` and
the recorded-fuel replay of existing caches stay on the substitution path:
NbE results are memoized under their own cache kinds (``"cc.nf"`` vs.
``"cc.nf.subst"``) and the two engines never share entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.names import fresh
from repro.kernel import fv
from repro.kernel.budget import Budget
from repro.kernel.memo import context_token
from repro.kernel.nodespec import Language
from repro.kernel.substitution import subst

__all__ = ["NbeSpec", "Thunk", "nbe_normalize", "nbe_whnf"]

_EMPTY_ENV: dict = {}

# Frame tags.
_F_APP = "app"      # (tag, node, env): application node, argument pending
_F_APPV = "appv"    # (tag, thunk): application with a pre-built argument thunk
_F_FST = "fst"      # (tag, node, env)
_F_SND = "snd"      # (tag, node, env)
_F_IF = "if"        # (tag, node, env)
_F_NAT = "nat"      # (tag, node, env)
_F_FORCE = "force"  # (tag, thunk): update marker for call-by-need
_F_CODE = "code"    # (tag, clo_node, env): CC-CC code-position exposure


class Thunk:
    """A delayed ``(term, env)`` evaluation, forced at most once.

    ``whnf`` caches the weak value ``(term, env, spine)``; ``nf`` the strong
    normal form; ``resid`` the residual term (the delayed substitution
    applied, nothing reduced) and ``fnames`` its free-name set.  ``binder``
    marks quotation-time neutrals: only those participate in δ-shadowing.
    """

    __slots__ = ("term", "env", "binder", "whnf", "nf", "resid", "fnames")

    def __init__(self, term: Any, env: dict, binder: bool = False) -> None:
        self.term = term
        self.env = env
        self.binder = binder
        self.whnf: Any = None
        self.nf: Any = None
        self.resid: Any = None
        self.fnames: Any = None


def _neutral(var_cls: type, name: str) -> Thunk:
    """A pre-forced thunk for a quotation-time bound variable."""
    var = var_cls(name)
    thunk = Thunk(var, _EMPTY_ENV, binder=True)
    thunk.whnf = (var, _EMPTY_ENV, ())
    thunk.nf = var
    thunk.resid = var
    thunk.fnames = frozenset((name,))
    return thunk


@dataclass
class NbeSpec:
    """Per-calculus wiring for the generic engine.

    The eliminator node classes of both calculi share their field names
    (``fn``/``arg``, ``pair``, ``cond``/``then_branch``/``else_branch``,
    ``motive``/``base``/``step``/``target``, ``name``/``bound``/``body``),
    which the engine relies on; everything *structural* (constructor
    children, binder scoping) is driven by the registered node specs.
    β differs per calculus: CC applies ``lam_cls`` directly, CC-CC applies
    a ``clo_cls`` whose code position weak-head-exposes a ``codelam_cls``.
    """

    lang: Language
    var_cls: type
    let_cls: type
    app_cls: type
    fst_cls: type
    snd_cls: type
    pair_cls: type
    if_cls: type
    boollit_cls: type
    natelim_cls: type
    zero_cls: type
    succ_cls: type
    trivial: tuple[type, ...] = ()
    lam_cls: type | None = None
    clo_cls: type | None = None
    codelam_cls: type | None = None
    tags: dict[type, str] = field(default_factory=dict)
    trivial_set: frozenset = frozenset()

    def __post_init__(self) -> None:
        self.tags = {
            self.var_cls: "var",
            self.let_cls: "let",
            self.app_cls: _F_APP,
            self.fst_cls: _F_FST,
            self.snd_cls: _F_SND,
            self.if_cls: _F_IF,
            self.natelim_cls: _F_NAT,
        }
        self.trivial_set = frozenset(self.trivial)


# --------------------------------------------------------------------------
# Residualization: the delayed substitution, applied on demand.
# --------------------------------------------------------------------------


def _thunk_resid(spec: NbeSpec, thunk: Thunk) -> Any:
    """The residual term of ``thunk`` (substitution applied, nothing reduced).

    Iterative over the thunk dependency DAG so chains of pending β-bindings
    never recurse in Python.
    """
    if thunk.resid is not None:
        return thunk.resid
    lang = spec.lang
    stack = [thunk]
    while stack:
        current = stack[-1]
        if current.resid is not None:
            stack.pop()
            continue
        env = current.env
        if env:
            pending = [
                dep
                for name in fv.free_vars(lang, current.term)
                if (dep := env.get(name)) is not None and dep.resid is None
            ]
            if pending:
                stack.extend(pending)
                continue
        current.resid = _resid(spec, current.term, env)
        stack.pop()
    return thunk.resid


def _resid(spec: NbeSpec, term: Any, env: dict) -> Any:
    """Substitute the residuals of ``env`` into ``term`` (pruned, sharing)."""
    if not env:
        return term
    mapping: dict[str, Any] | None = None
    for name in fv.free_vars(spec.lang, term):
        thunk = env.get(name)
        if thunk is not None:
            if mapping is None:
                mapping = {}
            mapping[name] = _thunk_resid(spec, thunk)
    if not mapping:
        return term
    return subst(spec.lang, term, mapping)


def _thunk_fnames(spec: NbeSpec, thunk: Thunk) -> frozenset:
    """Free names of ``thunk``'s residual, computed without residualizing."""
    if thunk.fnames is not None:
        return thunk.fnames
    lang = spec.lang
    stack = [thunk]
    while stack:
        current = stack[-1]
        if current.fnames is not None:
            stack.pop()
            continue
        names = fv.free_vars(lang, current.term)
        env = current.env
        if not env:
            current.fnames = names
            stack.pop()
            continue
        pending = [
            dep
            for name in names
            if (dep := env.get(name)) is not None and dep.fnames is None
        ]
        if pending:
            stack.extend(pending)
            continue
        out: set[str] = set()
        for name in names:
            dep = env.get(name)
            if dep is None:
                out.add(name)
            else:
                out |= dep.fnames
        current.fnames = frozenset(out)
        stack.pop()
    return thunk.fnames


def _delta_env(env: dict) -> dict:
    """The fraction of ``env`` a δ-unfolded definition can see.

    A definition's text is context-level syntax: β/ζ-bound names in it refer
    to the context, never to machine bindings.  Quotation-time binder
    neutrals that kept their source name *do* apply — a binder shadowing a
    δ-definition masks it inside its scope, exactly as the substitution
    engine's context-extension does.
    """
    if not env:
        return env
    restricted = {
        name: thunk
        for name, thunk in env.items()
        if thunk.binder and thunk.term.name == name
    }
    return restricted if restricted else _EMPTY_ENV


# --------------------------------------------------------------------------
# The machine: weak-head evaluation with one explicit frame stack.
# --------------------------------------------------------------------------


def _machine(
    spec: NbeSpec, ctx: Any, term: Any, env: dict, budget: Budget
) -> tuple[Any, dict, tuple]:
    """Reduce ``(term, env)`` to a weak value ``(head, env, spine)``.

    ``head`` is weak-head-normal syntax under ``env``; ``spine`` is the
    tuple of elimination frames stuck around it, innermost first (empty
    unless the head is neutral or an eliminator's scrutinee has the wrong
    shape).  Spends one budget unit per δ/ζ/β/π/ι contraction.
    """
    tags = spec.tags
    lam_cls = spec.lam_cls
    clo_cls = spec.clo_cls
    frames: list = []
    while True:
        cls = type(term)
        tag = tags.get(cls)
        if tag is not None:
            if tag == "var":
                thunk = env.get(term.name) if env else None
                if thunk is not None:
                    cached = thunk.whnf
                    if cached is not None:
                        term, env = cached[0], cached[1]
                        if cached[2]:
                            frames.extend(reversed(cached[2]))
                        # The cached head is weak-head normal: fall through
                        # to unwinding rather than re-dispatching on it.
                        cls = type(term)
                    else:
                        frames.append((_F_FORCE, thunk))
                        term, env = thunk.term, thunk.env
                        continue
                else:
                    binding = ctx.lookup(term.name)
                    if binding is not None and binding.definition is not None:
                        budget.spend()
                        term, env = binding.definition, _delta_env(env)
                        continue
                    # neutral: fall through to unwinding
            elif tag == "let":
                budget.spend()
                outer = env
                env = dict(outer)
                env[term.name] = Thunk(term.bound, outer)
                term = term.body
                continue
            elif tag == _F_APP:
                frames.append((_F_APP, term, env))
                term = term.fn
                continue
            elif tag == _F_FST or tag == _F_SND:
                frames.append((tag, term, env))
                term = term.pair
                continue
            elif tag == _F_IF:
                frames.append((_F_IF, term, env))
                term = term.cond
                continue
            else:  # _F_NAT
                frames.append((_F_NAT, term, env))
                term = term.target
                continue

        # ``term`` (under ``env``) is a weak-head value; consume frames.
        resume = False
        while frames:
            frame = frames[-1]
            ftag = frame[0]
            if ftag == _F_FORCE:
                frames.pop()
                frame[1].whnf = (term, env, ())
                continue
            if ftag == _F_APP or ftag == _F_APPV:
                if lam_cls is not None and cls is lam_cls:
                    frames.pop()
                    budget.spend()
                    arg = frame[1] if ftag == _F_APPV else Thunk(frame[1].arg, frame[2])
                    env = dict(env)
                    env[term.name] = arg
                    term = term.body
                    resume = True
                    break
                if clo_cls is not None and cls is clo_cls:
                    # Expose the code position; the app frame stays below.
                    frames.append((_F_CODE, term, env))
                    term = term.code
                    resume = True
                    break
                break  # stuck application
            if ftag == _F_CODE:
                frames.pop()
                clo_node, clo_env = frame[1], frame[2]
                if cls is spec.codelam_cls:
                    app = frames.pop()
                    budget.spend()
                    if app[0] == _F_APPV:
                        arg = app[1]
                    else:
                        arg = Thunk(app[1].arg, app[2])
                    # Parallel binding of environment and argument — the
                    # same discipline as cccc.reduce._beta (the argument
                    # mapping wins when the code shadows env_name).
                    new_env = dict(env)
                    new_env[term.env_name] = Thunk(clo_node.env, clo_env)
                    new_env[term.arg_name] = arg
                    term, env = term.body, new_env
                    resume = True
                    break
                # Stuck closure (code exposed but not literal): residualize
                # the whole closure, mirroring ``Clo(code_whnf, env)`` in
                # the substitution engine.  The application above it is
                # stuck too, so fall through to finalization.
                code = _resid(spec, term, env)
                if code is clo_node.code:
                    term, env = clo_node, clo_env
                else:
                    term, env = clo_cls(code, _resid(spec, clo_node.env, clo_env)), _EMPTY_ENV
                break
            if ftag == _F_FST:
                if cls is spec.pair_cls:
                    frames.pop()
                    budget.spend()
                    term = term.fst_val
                    resume = True
                    break
                break
            if ftag == _F_SND:
                if cls is spec.pair_cls:
                    frames.pop()
                    budget.spend()
                    term = term.snd_val
                    resume = True
                    break
                break
            if ftag == _F_IF:
                if cls is spec.boollit_cls:
                    frames.pop()
                    budget.spend()
                    node, env = frame[1], frame[2]
                    term = node.then_branch if term.value else node.else_branch
                    resume = True
                    break
                break
            if ftag == _F_NAT:
                if cls is spec.zero_cls:
                    frames.pop()
                    budget.spend()
                    term, env = frame[1].base, frame[2]
                    resume = True
                    break
                if cls is spec.succ_cls:
                    frames.pop()
                    budget.spend()
                    node, node_env = frame[1], frame[2]
                    # ι-succ: continue as ``step pred (natelim … pred)``.
                    # ``pred`` lives under the scrutinee's environment while
                    # motive/base/step live under the node's — a fresh name
                    # bridges the two without residualizing anything.
                    pred = Thunk(term.pred, env)
                    hole = fresh("n")
                    rec_env = dict(node_env)
                    rec_env[hole] = pred
                    rec = Thunk(
                        spec.natelim_cls(
                            node.motive, node.base, node.step, spec.var_cls(hole)
                        ),
                        rec_env,
                    )
                    frames.append((_F_APPV, rec))
                    frames.append((_F_APPV, pred))
                    term, env = node.step, node_env
                    resume = True
                    break
                break
            break  # unreachable: every frame tag is handled above
        if resume:
            continue
        if not frames:
            return term, env, ()
        return _finalize(spec, term, env, frames)


def _finalize(spec: NbeSpec, term: Any, env: dict, frames: list) -> tuple[Any, dict, tuple]:
    """Convert a stuck machine state into ``(head, env, spine)``.

    Pops remaining frames innermost-first, updating thunk markers with the
    stuck value accumulated so far and collapsing CC-CC code-exposure
    markers back into (possibly rebuilt) closures.
    """
    spine: list = []
    while frames:
        frame = frames.pop()
        ftag = frame[0]
        if ftag == _F_FORCE:
            frame[1].whnf = (term, env, tuple(spine))
        elif ftag == _F_CODE:
            clo_node, clo_env = frame[1], frame[2]
            code = _rebuild_weak(spec, term, env, spine)
            spine = []
            if code is clo_node.code:
                term, env = clo_node, clo_env
            else:
                # Fully residual: the rebuilt code's free names are
                # context-level and must not resolve through ``clo_env``.
                term, env = spec.clo_cls(code, _resid(spec, clo_node.env, clo_env)), _EMPTY_ENV
        else:
            spine.append(frame)
    return term, env, tuple(spine)


# --------------------------------------------------------------------------
# Weak quotation: read a weak value back as a term (public whnf).
# --------------------------------------------------------------------------


def _rebuild_weak(spec: NbeSpec, term: Any, env: dict, spine) -> Any:
    """Residualize a weak value, sharing every node evaluation left alone."""
    current = _resid(spec, term, env)
    for frame in spine:
        ftag = frame[0]
        if ftag == _F_APPV:
            current = spec.app_cls(current, _thunk_resid(spec, frame[1]))
            continue
        node, fenv = frame[1], frame[2]
        if ftag == _F_APP:
            arg = _resid(spec, node.arg, fenv)
            if current is node.fn and arg is node.arg:
                current = node
            else:
                current = spec.app_cls(current, arg)
        elif ftag == _F_FST:
            current = node if current is node.pair else spec.fst_cls(current)
        elif ftag == _F_SND:
            current = node if current is node.pair else spec.snd_cls(current)
        elif ftag == _F_IF:
            then_branch = _resid(spec, node.then_branch, fenv)
            else_branch = _resid(spec, node.else_branch, fenv)
            if (
                current is node.cond
                and then_branch is node.then_branch
                and else_branch is node.else_branch
            ):
                current = node
            else:
                current = spec.if_cls(current, then_branch, else_branch)
        else:  # _F_NAT
            motive = _resid(spec, node.motive, fenv)
            base = _resid(spec, node.base, fenv)
            step = _resid(spec, node.step, fenv)
            if (
                current is node.target
                and motive is node.motive
                and base is node.base
                and step is node.step
            ):
                current = node
            else:
                current = spec.natelim_cls(motive, base, step, current)
    return current


def nbe_whnf(spec: NbeSpec, ctx: Any, term: Any, budget: Budget) -> Any:
    """Weak-head-normalize ``term`` under ``ctx`` with the machine."""
    head, env, spine = _machine(spec, ctx, term, _EMPTY_ENV, budget)
    if not spine and not env:
        return head
    return _rebuild_weak(spec, head, env, spine)


# --------------------------------------------------------------------------
# Strong normalization: iterative evaluate-then-quote.
# --------------------------------------------------------------------------

# Task tags for the strong-normalization work loop.
_T_NF = 0      # (tag, term, env, ctx, dest, idx)
_T_BUILD = 1   # (tag, node|None, cls, template, parts, dest, idx)
_T_CACHE = 2   # (tag, term, token, start_spent, dest, idx)
_T_THUNK = 3   # (tag, thunk, dest, idx)

# Spine-frame rebuild plans: (cls attr, scrutinee attr, other child attrs).
_SPINE_CHILDREN = {
    _F_APP: ("fn", ("arg",)),
    _F_FST: ("pair", ()),
    _F_SND: ("pair", ()),
    _F_IF: ("cond", ("then_branch", "else_branch")),
    _F_NAT: ("target", ("motive", "base", "step")),
}
_SPINE_CLS = {
    _F_APP: "app_cls",
    _F_FST: "fst_cls",
    _F_SND: "snd_cls",
    _F_IF: "if_cls",
    _F_NAT: "natelim_cls",
}


def nbe_normalize(
    spec: NbeSpec,
    ctx: Any,
    term: Any,
    budget: Budget,
    cache: Any = None,
    kind: str | None = None,
) -> Any:
    """Fully normalize ``term`` under ``ctx`` by evaluate-then-quote.

    When ``cache``/``kind`` are given, every environment-independent
    subcomputation is memoized under ``(id(term), kind, context_token)``
    with the budget it spent, exactly like the substitution engine's memo —
    warm calls replay recorded fuel deterministically.
    """
    lang = spec.lang
    var_cls = spec.var_cls
    trivial = spec.trivial_set
    # Session state resolved once per call: the active state cannot change
    # mid-normalization, and the property probe is too hot for the loop.
    fv_cache = lang.fv_cache
    out: list = [None]
    tasks: list = [(_T_NF, term, _EMPTY_ENV, ctx, out, 0)]
    while tasks:
        task = tasks.pop()
        tag = task[0]
        if tag == _T_NF:
            _, t, env, tctx, dest, idx = task
            cls = type(t)
            if cls in trivial:
                dest[idx] = t
                continue
            weak = None
            if cls is var_cls and env:
                thunk = env.get(t.name)
                if thunk is not None:
                    if thunk.nf is not None:
                        dest[idx] = thunk.nf
                        continue
                    tasks.append((_T_THUNK, thunk, dest, idx))
                    t, env = thunk.term, thunk.env
                    weak = thunk.whnf
                    cls = type(t)
                    if cls in trivial:
                        dest[idx] = t
                        continue
            if weak is None:
                # Memoize exactly the subcomputations whose identity is
                # stable across runs: environment-independent terms.  The
                # relevance probe must be O(1) — a cached free-variable set
                # or an empty environment; computing free variables for
                # run-local intermediate terms would dominate the cold path.
                if env:
                    fvs = fv_cache.get(t)
                    if fvs is not None and not any(name in env for name in fvs):
                        env = _EMPTY_ENV
                if not env:
                    if cls is var_cls:
                        binding = tctx.lookup(t.name)
                        if binding is None or binding.definition is None:
                            dest[idx] = t
                            continue
                    if cache is not None:
                        token = context_token(tctx)
                        hit = cache.lookup(kind, t, token)
                        if hit is not None:
                            dest[idx] = hit[0]
                            budget.charge(hit[1])
                            continue
                        tasks.append((_T_CACHE, t, token, budget.spent, dest, idx))
                head, henv, spine = _machine(spec, tctx, t, env, budget)
            else:
                head, henv, spine = weak
            if spine:
                _push_spine(spec, tasks, tctx, head, henv, spine, dest, idx)
            else:
                _push_node(spec, tasks, tctx, head, henv, dest, idx)
        elif tag == _T_BUILD:
            _, node, cls, template, parts, dest, idx = task
            args = [parts[entry] if isinstance(entry, int) else entry[1] for entry in template]
            if node is not None:
                for value, attr in zip(args, _field_order(spec, cls)):
                    if value is not getattr(node, attr):
                        dest[idx] = cls(*args)
                        break
                else:
                    dest[idx] = node
            else:
                dest[idx] = cls(*args)
        elif tag == _T_CACHE:
            _, t, token, start, dest, idx = task
            cache.store(kind, t, token, dest[idx], budget.spent - start)
        else:  # _T_THUNK
            _, thunk, dest, idx = task
            thunk.nf = dest[idx]
    return out[0]


def _field_order(spec: NbeSpec, cls: type) -> tuple[str, ...]:
    node_spec = spec.lang.specs.get(cls)
    return node_spec.field_order if node_spec is not None else ()


def _push_spine(
    spec: NbeSpec, tasks: list, ctx: Any, head: Any, henv: dict, spine, dest, idx
) -> None:
    """Queue normalization of a stuck spine, outermost build popped last."""
    # Chain the frames: frame i's result becomes frame i+1's scrutinee; the
    # innermost scrutinee is the head value itself.
    pending: list = []  # (build task, child nf tasks) queued outermost-first
    current_dest, current_idx = dest, idx
    for frame in reversed(spine):  # outermost first
        ftag = frame[0]
        if ftag == _F_APPV:
            thunk = frame[1]
            parts: list = [None, None]
            template = [0, 1]
            build = (_T_BUILD, None, spec.app_cls, template, parts, current_dest, current_idx)
            children: list = []
            if thunk.nf is not None:
                parts[1] = thunk.nf
            else:
                children.append((_T_THUNK, thunk, parts, 1))
                children.append((_T_NF, thunk.term, thunk.env, ctx, parts, 1))
            pending.append((build, children))
            current_dest, current_idx = parts, 0
            continue
        node, fenv = frame[1], frame[2]
        scrut_attr, other_attrs = _SPINE_CHILDREN[ftag]
        cls = getattr(spec, _SPINE_CLS[ftag])
        node_spec = spec.lang.spec(node)
        parts = [None] * (1 + len(other_attrs))
        slot_of = {scrut_attr: 0}
        for offset, attr in enumerate(other_attrs):
            slot_of[attr] = 1 + offset
        template = [slot_of[attr] for attr in node_spec.field_order]
        build = (_T_BUILD, node, cls, template, parts, current_dest, current_idx)
        children = [
            (_T_NF, getattr(node, attr), fenv, ctx, parts, 1 + offset)
            for offset, attr in enumerate(other_attrs)
        ]
        pending.append((build, children))
        current_dest, current_idx = parts, 0
    for build, children in pending:
        tasks.append(build)
        tasks.extend(children)
    # Innermost: the head value itself.
    _push_node(spec, tasks, ctx, head, henv, current_dest, current_idx)


def _push_node(
    spec: NbeSpec, tasks: list, ctx: Any, node: Any, env: dict, dest, idx
) -> None:
    """Queue normalization of a weak-head-normal node's children."""
    lang = spec.lang
    cls = type(node)
    if cls in spec.trivial_set or (cls is spec.var_cls and (not env or node.name not in env)):
        dest[idx] = node
        return
    if cls is spec.var_cls:
        # An env-bound variable surviving the machine is a quotation neutral.
        thunk = env[node.name]
        if thunk.nf is not None:
            dest[idx] = thunk.nf
            return
        tasks.append((_T_THUNK, thunk, dest, idx))
        tasks.append((_T_NF, thunk.term, thunk.env, ctx, dest, idx))
        return
    node_spec = lang.spec(node)
    children = node_spec.children
    binder_attrs = node_spec.binder_attrs
    if not children:
        dest[idx] = node
        return
    envs = [env]
    ctxs = [ctx]
    chosen: dict[str, str] = {}
    if binder_attrs:
        avoid: frozenset | None = None
        if env:
            collected: set[str] | None = None
            for name in fv.free_vars(lang, node):
                thunk = env.get(name)
                if thunk is not None:
                    names = _thunk_fnames(spec, thunk)
                    if collected is None:
                        collected = set(names)
                    else:
                        collected |= names
            if collected is not None:
                avoid = frozenset(collected)
        current_env, current_ctx = env, ctx
        for attr in binder_attrs:
            source = getattr(node, attr)
            name = fresh(source) if avoid is not None and source in avoid else source
            chosen[attr] = name
            current_env = dict(current_env)
            current_env[source] = _neutral(spec.var_cls, name)
            if name == source:
                binding = current_ctx.lookup(source)
                if binding is not None and binding.definition is not None:
                    # Mask the shadowed definition, as the substitution
                    # engine's context extension does.
                    current_ctx = current_ctx.extend(source, binding.type_)
            envs.append(current_env)
            ctxs.append(current_ctx)
    parts = [None] * len(children)
    slot_of = {child.attr: position for position, child in enumerate(children)}
    template: list = []
    for attr in node_spec.field_order:
        if attr in slot_of:
            template.append(slot_of[attr])
        elif attr in chosen:
            template.append(("lit", chosen[attr]))
        else:
            template.append(("lit", getattr(node, attr)))
    tasks.append((_T_BUILD, node, cls, template, parts, dest, idx))
    for position, child in enumerate(children):
        depth = len(child.binders)
        tasks.append(
            (_T_NF, getattr(node, child.attr), envs[depth], ctxs[depth], parts, position)
        )
