"""Incremental, whnf-driven conversion checking shared by both calculi.

The [Conv] rule makes definitional equivalence the hot path of both type
checkers.  The naive decision procedure — fully normalize both sides, then
α-compare — does the worst-case-exponential work of strong normalization
even when the answer is obvious: two terms that diverge at their head
constructors, or that share a large subterm by pointer, pay the full price
anyway.  This engine decides the same relation *incrementally*:

* each side is reduced only to **weak-head normal form**, lazily, one
  node at a time — subterms are reduced only if the comparison actually
  reaches them;
* heads are compared first, so terms that diverge near the root **fail
  fast** without ever normalizing their subtrees;
* at every recursion point the engine short-circuits on **pointer
  equality** and on **interned pointer equality** (``intern(a) is
  intern(b)``, probed through the α-canonical intern memo of
  :mod:`repro.kernel.intern`), so shared or previously-interned subterms
  cost O(1) regardless of size.  The probe never *forces* a
  canonicalization mid-walk — forcing would re-walk the subtree at every
  spine level and turn a linear comparison quadratic; terms that were
  interned by any earlier consumer simply get the fast path for free;
* η-rules (function η in CC, the closure η-principle [≡-Clo1/2] in
  CC-CC) are applied during the spine walk via per-calculus hooks, not by
  a separate pass over normal forms;
* the ``whnf`` hook each calculus supplies is backed by the **NbE
  environment machine** (:mod:`repro.kernel.nbe`): each side is evaluated
  to a semantic weak value (closures and memoizing thunks instead of
  eager substitution), then quoted back to a weak-head-normal term via
  *pruned delayed substitution* — arguments left untouched by reduction
  residualize as pointer-shared originals.  β-heavy heads therefore cost
  the machine's call-by-need discipline instead of per-step tree
  rewriting; comparing machine values spine-to-spine without any
  quotation is a noted next step (ROADMAP "NbE-native conversion
  values").

The walk itself is **iterative** (an explicit stack of pending
comparisons): conversion is a pure conjunction — no rule ever backtracks —
so a work-list with early ``False`` exit decides it without Python-level
recursion, and 10k-node-deep terms compare fine (the per-calculus ``whnf``
is recursive only along *reduction* spines, not along the structural
descent this engine performs).

Binder handling uses **scope chains** instead of per-frame environment
dict copies: crossing a binder conses one ``(left name, right name,
parent)`` node.  A variable pair is equal when the innermost chain node
mentioning either name mentions both (same binder level) or when neither
name is mentioned and the free names coincide.  The pointer short-circuits
are guarded by the same chain: identical subterms (or identical interned
representatives) are only skipped when every free variable of the subterm
resolves to the *same* binder level on both sides — the condition under
which comparing a term to itself is vacuous.

Contexts are threaded per side and only ever consulted by ``whnf`` for
δ-reduction, so crossing a binder extends a side's context **only when the
binder shadows a visible definition** (an assumption entry whose only job
is to make the name neutral).  Everything else about the context — types
of assumptions in particular — is invisible to conversion, which is what
keeps the relation untyped, as in the paper.
"""

from __future__ import annotations

from typing import Any

from repro.kernel import fv
from repro.kernel.budget import Budget
from repro.kernel.nodespec import Language

__all__ = ["ConversionRules", "convert"]

#: A scope chain node: (left binder name, right binder name, parent | None).
Scope = "tuple[str, str, Any] | None"

#: A pending comparison: (left, right, left context, right context, scope).
Task = tuple


class ConversionRules:
    """Per-calculus hooks for the generic engine.

    Concrete subclasses live next to each calculus's ``equiv`` module; the
    engine itself never imports an AST.
    """

    #: The calculus, for node specs, the var class, and the intern memo.
    lang: Language

    #: ``node class -> child attrs`` the comparison ignores (computationally
    #: irrelevant annotations: λ domains in CC, pair annotations in both).
    irrelevant: dict[type, tuple[str, ...]] = {}

    def whnf(self, ctx: Any, term: Any, budget: Budget) -> Any:
        """Weak-head-normalize ``term`` under ``ctx``."""
        raise NotImplementedError

    def prepare(self, ctx: Any, term: Any, budget: Budget) -> Any:
        """Post-whnf head adjustment (default: none).

        CC-CC uses this to weak-head-normalize the *code* position of a
        closure, so the η hook sees literal code even when the closure was
        built over a δ-defined variable.
        """
        return term

    def eta(
        self, left: Any, right: Any, ctx_l: Any, ctx_r: Any, scope: Any, budget: Budget
    ) -> list[Task] | None:
        """η-step for two weak-head normal forms, or None when none applies.

        When an η-rule relates the heads, return the replacement comparison
        tasks (usually one); the engine pushes them and moves on.  The hook
        must only fire when *exactly* the η-capable shape is present —
        returning ``None`` hands the pair to the structural comparator.
        """
        return None


def convert(
    rules: ConversionRules,
    ctx_left: Any,
    ctx_right: Any,
    left: Any,
    right: Any,
    budget: Budget,
) -> bool:
    """Decide ``ctx ⊢ left ≡ right`` incrementally under ``rules``.

    ``ctx_left``/``ctx_right`` start out as the same context; they diverge
    only through shadowing extensions as the walk crosses binders whose
    names differ between the sides.
    """
    lang = rules.lang
    var_cls = lang.var_cls
    intern_memo = lang.intern_cache  # the active session's memo, fixed per walk
    irrelevant = rules.irrelevant
    stack: list[Task] = [(left, right, ctx_left, ctx_right, None)]
    while stack:
        l, r, cl, cr, scope = stack.pop()
        if l is r and _free_agree(lang, l, scope):
            continue
        lw = rules.prepare(cl, rules.whnf(cl, l, budget), budget)
        rw = rules.prepare(cr, rules.whnf(cr, r, budget), budget)
        if lw is rw and _free_agree(lang, lw, scope):
            continue
        rep = intern_memo.get(lw)
        if rep is not None and rep is intern_memo.get(rw) and _free_agree(lang, lw, scope):
            continue
        tasks = rules.eta(lw, rw, cl, cr, scope, budget)
        if tasks is not None:
            stack.extend(tasks)
            continue
        if isinstance(lw, var_cls) or isinstance(rw, var_cls):
            if type(lw) is not type(rw) or not _bound_same(lw.name, rw.name, scope):
                return False
            continue
        if type(lw) is not type(rw):
            return False  # divergent heads: no subterm was ever visited
        spec = lang.spec(lw)
        if any(getattr(lw, attr) != getattr(rw, attr) for attr in spec.data_attrs):
            return False
        children = spec.children
        if not children:
            continue
        skipped = irrelevant.get(type(lw), ())
        depth = 0
        for child in children:
            while depth < len(child.binders):
                binder = spec.binder_attrs[depth]
                name_l = getattr(lw, binder)
                name_r = getattr(rw, binder)
                scope = (name_l, name_r, scope)
                cl = _shadow(cl, name_l)
                cr = _shadow(cr, name_r)
                depth += 1
            if child.attr in skipped:
                continue
            stack.append((getattr(lw, child.attr), getattr(rw, child.attr), cl, cr, scope))
    return True


def _bound_same(name_l: str, name_r: str, scope: Any) -> bool:
    """Do the two names resolve to the same binder level (or both free)?"""
    node = scope
    while node is not None:
        nl, nr, node = node
        if nl == name_l or nr == name_r:
            # Innermost binding of either name decides: equal only when it
            # binds both at once (shadowing makes outer nodes irrelevant).
            return nl == name_l and nr == name_r
    return name_l == name_r


def _free_agree(lang: Language, term: Any, scope: Any) -> bool:
    """May ``term``-vs-itself be skipped under ``scope``?

    True when every free variable of ``term`` resolves identically on the
    left and right sides of the chain — bound at the same level, or free on
    both.  With an empty chain this is vacuous, which is the common case at
    the top of a comparison.
    """
    if scope is None:
        return True
    names = fv.free_vars(lang, term)
    if not names:
        return True
    for name in names:
        node = scope
        while node is not None:
            nl, nr, node = node
            if nl == name or nr == name:
                if nl != name or nr != name:
                    return False
                break
    return True


def _shadow(ctx: Any, name: str) -> Any:
    """Mask any visible definition of ``name`` before descending under it.

    Bound variables are neutral; if the surrounding context δ-defines the
    same name, an assumption entry must shadow it or ``whnf`` would unfold
    a bound occurrence.  When no definition is visible the context is
    returned unchanged — the extension would be unobservable.
    """
    binding = ctx.lookup(name)
    if binding is None or binding.definition is None:
        return ctx
    return ctx.extend(name, binding.type_)
