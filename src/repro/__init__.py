"""Typed closure conversion for the Calculus of Constructions.

Layer map (see ARCHITECTURE.md): ``surface/`` → ``cc/`` → ``closconv/`` →
``cccc/`` → ``machine/``/``model/``, over the shared ``kernel/`` engines.

The recommended entrypoint is the session API::

    from repro import api
    session = api.Session()
    print(session.check(r"\\ (A : Type) (x : A). x").to_dict())

Each :class:`~repro.api.Session` owns isolated kernel state (caches,
fresh-name counter, engine choice); the classic module functions
(``repro.cc.infer`` …) keep working as shims over the process-default
session.
"""
