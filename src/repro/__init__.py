"""placeholder"""
