"""A Coq-flavoured surface syntax for CC (lexer + parser).

The paper's formal syntax is austere; examples and tests are far more
readable written as, e.g.::

    parse_term(r"\\ (A : Type) (x : A). x")
    parse_term("forall (A : Type), A -> A")
    parse_term("exists (x : Nat), P x")
"""

from repro.surface.lexer import Token, tokenize
from repro.surface.parser import parse_term
from repro.surface.printer import to_surface

__all__ = ["Token", "parse_term", "to_surface", "tokenize"]
