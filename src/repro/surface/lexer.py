"""Lexer for the CC surface syntax.

The concrete syntax is ASCII and Coq-flavoured::

    \\ (A : Type) (x : A). x            -- λ (multi-binder sugar)
    forall (A : Type), A -> A           -- Π
    exists (x : Nat), Positive x        -- Σ
    let y = succ 0 : Nat in y
    <3, p> as (exists (x : Nat), P x)   -- dependent pair
    fst e   snd e   succ e
    if b then e1 else e2
    natelim(P, z, s, n)
    Type  Kind  Bool  Nat  true  false  0  42

Identifiers may contain letters, digits, underscores and primes, and must
not start with a digit.  The ``$`` character is reserved for machine
names and rejected here, which is what keeps :func:`repro.common.names.
fresh` collision-free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ParseError

__all__ = ["KEYWORDS", "Token", "tokenize"]

KEYWORDS = {
    "fun",
    "forall",
    "exists",
    "let",
    "in",
    "if",
    "then",
    "else",
    "fst",
    "snd",
    "succ",
    "natelim",
    "as",
    "Type",
    "Kind",
    "Bool",
    "Nat",
    "true",
    "false",
}

_SYMBOLS = ["->", "=>", "\\", "(", ")", ":", ".", ",", "<", ">", "="]


@dataclass(frozen=True)
class Token:
    """One lexeme with its source location (1-based line/column)."""

    kind: str  # 'ident' | 'number' | 'keyword' | 'symbol' | 'eof'
    text: str
    line: int
    column: int


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens; ``--`` starts a comment to end of line."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if source.startswith("--", index):
            while index < length and source[index] != "\n":
                index += 1
            continue

        symbol = next((s for s in _SYMBOLS if source.startswith(s, index)), None)
        if symbol is not None:
            tokens.append(Token("symbol", symbol, line, column))
            index += len(symbol)
            column += len(symbol)
            continue

        if char.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            text = source[start:index]
            tokens.append(Token("number", text, line, column))
            column += len(text)
            continue

        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] in "_'"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += len(text)
            continue

        if char == "$":
            raise ParseError("'$' is reserved for machine-generated names", line, column)
        raise ParseError(f"unexpected character {char!r}", line, column)

    tokens.append(Token("eof", "", line, column))
    return tokens
