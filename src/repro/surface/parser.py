"""Recursive-descent parser from the surface syntax to CC terms.

Grammar (binders right-associate; application is left-associative and
binds tighter than ``->``, which is right-associative)::

    term    ::= lambda | forall | exists | let | if | arrow
    lambda  ::= ('\\' | 'fun') binder+ '.' term
    forall  ::= 'forall' binder+ ',' term
    exists  ::= 'exists' binder+ ',' term
    let     ::= 'let' IDENT '=' term ':' term 'in' term
    if      ::= 'if' term 'then' term 'else' term
    arrow   ::= app ('->' term)?
    app     ::= prefix prefix*
    prefix  ::= ('fst' | 'snd' | 'succ') prefix | atom
    atom    ::= IDENT | NUMBER | 'Type' | 'Kind' | 'Bool' | 'Nat'
              | 'true' | 'false'
              | 'natelim' '(' term ',' term ',' term ',' term ')'
              | '<' term ',' term '>' 'as' prefix
              | '(' term ')'
    binder  ::= '(' IDENT+ ':' term ')'
"""

from __future__ import annotations

from repro import cc
from repro.common.errors import ParseError
from repro.surface.lexer import Token, tokenize

__all__ = ["parse_term"]


def parse_term(source: str) -> cc.Term:
    """Parse ``source`` into a CC term; raises :class:`ParseError`."""
    parser = _Parser(tokenize(source))
    term = parser.term()
    parser.expect_eof()
    return term


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def at(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def eat(self, kind: str, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.peek()
        if not self.at(kind, text):
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r} but found {token.text or token.kind!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def expect_eof(self) -> None:
        token = self.peek()
        if token.kind != "eof":
            raise ParseError(
                f"unexpected trailing input {token.text!r}", token.line, token.column
            )

    def fail(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, token.line, token.column)

    # -- grammar ---------------------------------------------------------------

    def term(self) -> cc.Term:
        if self.at("symbol", "\\") or self.at("keyword", "fun"):
            return self.lambda_()
        if self.at("keyword", "forall"):
            return self.quantifier(cc.Pi)
        if self.at("keyword", "exists"):
            return self.quantifier(cc.Sigma)
        if self.at("keyword", "let"):
            return self.let_()
        if self.at("keyword", "if"):
            return self.if_()
        return self.arrow()

    def binders(self) -> list[tuple[str, cc.Term]]:
        """One or more ``(x y : A)`` groups, flattened."""
        entries: list[tuple[str, cc.Term]] = []
        while self.at("symbol", "("):
            save = self.position
            self.advance()
            names: list[str] = []
            while self.at("ident"):
                names.append(self.advance().text)
            if not names or not self.at("symbol", ":"):
                # Not a binder group after all (e.g. a parenthesized term
                # in 'fun (f) ...' is illegal anyway, but binders may stop
                # before the body's opening paren).
                self.position = save
                break
            self.advance()  # ':'
            annotation = self.term()
            self.expect("symbol", ")")
            entries.extend((name, annotation) for name in names)
        return entries

    def lambda_(self) -> cc.Term:
        self.advance()  # '\' or 'fun'
        entries = self.binders()
        if not entries:
            raise self.fail("λ requires at least one '(x : A)' binder")
        self.expect("symbol", ".")
        body = self.term()
        for name, annotation in reversed(entries):
            body = cc.Lam(name, annotation, body)
        return body

    def quantifier(self, node: type) -> cc.Term:
        self.advance()  # 'forall' / 'exists'
        entries = self.binders()
        if not entries:
            raise self.fail("quantifier requires at least one '(x : A)' binder")
        self.expect("symbol", ",")
        body = self.term()
        for name, annotation in reversed(entries):
            body = node(name, annotation, body)
        return body

    def let_(self) -> cc.Term:
        self.advance()  # 'let'
        name = self.expect("ident").text
        self.expect("symbol", "=")
        bound = self.term()
        self.expect("symbol", ":")
        annotation = self.term()
        self.expect("keyword", "in")
        body = self.term()
        return cc.Let(name, bound, annotation, body)

    def if_(self) -> cc.Term:
        self.advance()  # 'if'
        cond = self.term()
        self.expect("keyword", "then")
        then_branch = self.term()
        self.expect("keyword", "else")
        else_branch = self.term()
        return cc.If(cond, then_branch, else_branch)

    def arrow(self) -> cc.Term:
        left = self.app()
        if self.eat("symbol", "->"):
            right = self.term()
            return cc.arrow(left, right)
        return left

    def app(self) -> cc.Term:
        head = self.prefix()
        while self._starts_atom():
            head = cc.App(head, self.prefix())
        return head

    def _starts_atom(self) -> bool:
        token = self.peek()
        if token.kind in ("ident", "number"):
            return True
        if token.kind == "symbol" and token.text in ("(", "<"):
            return True
        if token.kind == "keyword" and token.text in (
            "fst",
            "snd",
            "succ",
            "natelim",
            "Type",
            "Kind",
            "Bool",
            "Nat",
            "true",
            "false",
        ):
            return True
        return False

    def prefix(self) -> cc.Term:
        if self.eat("keyword", "fst"):
            return cc.Fst(self.prefix())
        if self.eat("keyword", "snd"):
            return cc.Snd(self.prefix())
        if self.eat("keyword", "succ"):
            return cc.Succ(self.prefix())
        return self.atom()

    def atom(self) -> cc.Term:
        token = self.peek()
        if token.kind == "ident":
            self.advance()
            return cc.Var(token.text)
        if token.kind == "number":
            self.advance()
            return cc.nat_literal(int(token.text))
        if token.kind == "keyword":
            match token.text:
                case "Type":
                    self.advance()
                    return cc.Star()
                case "Kind":
                    self.advance()
                    return cc.Box()
                case "Bool":
                    self.advance()
                    return cc.Bool()
                case "Nat":
                    self.advance()
                    return cc.Nat()
                case "true":
                    self.advance()
                    return cc.BoolLit(True)
                case "false":
                    self.advance()
                    return cc.BoolLit(False)
                case "natelim":
                    return self.natelim()
        if self.eat("symbol", "<"):
            first = self.term()
            self.expect("symbol", ",")
            second = self.term()
            self.expect("symbol", ">")
            self.expect("keyword", "as")
            annotation = self.prefix()
            return cc.Pair(first, second, annotation)
        if self.eat("symbol", "("):
            inner = self.term()
            self.expect("symbol", ")")
            return inner
        raise self.fail(f"unexpected {token.text or token.kind!r}")

    def natelim(self) -> cc.Term:
        self.expect("keyword", "natelim")
        self.expect("symbol", "(")
        motive = self.term()
        self.expect("symbol", ",")
        base = self.term()
        self.expect("symbol", ",")
        step = self.term()
        self.expect("symbol", ",")
        target = self.term()
        self.expect("symbol", ")")
        return cc.NatElim(motive, base, step, target)
