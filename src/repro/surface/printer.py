"""Print CC terms back into parseable surface syntax.

``parse_term(to_surface(e))`` is α-equal to ``e`` for any CC term whose
variable names are lexable identifiers; machine-generated names (which
contain ``$``) are sanitized first.  The round-trip property is tested in
``tests/test_surface_printer.py`` and used by the CLI to emit readable
output.
"""

from __future__ import annotations

from repro import cc
from repro.common.names import base_name, is_machine_name

__all__ = ["sanitize_names", "to_surface"]

_PREC_TERM = 0  # binders, let, if
_PREC_ARROW = 1
_PREC_APP = 2
_PREC_ATOM = 3


def to_surface(term: cc.Term) -> str:
    """Render ``term`` as parseable surface syntax."""
    return _pp(sanitize_names(term), _PREC_TERM)


def sanitize_names(term: cc.Term) -> cc.Term:
    """Rewrite machine names (``x$7``) into lexable ones (``x_7``)."""
    mapping: dict[str, cc.Term] = {}
    for name in cc.free_vars(term):
        if is_machine_name(name):
            mapping[name] = cc.Var(_sanitize(name))
    term = cc.subst(term, mapping)
    return _sanitize_binders(term)


def _sanitize(name: str) -> str:
    stem = base_name(name)
    suffix = name.split("$", 1)[1] if "$" in name else ""
    return f"{stem}_{suffix}" if suffix else stem


def _sanitize_binders(term: cc.Term) -> cc.Term:
    """Rename machine-named binders via capture-avoiding substitution."""
    match term:
        case cc.Pi(name, domain, codomain) | cc.Lam(name, domain, codomain) | cc.Sigma(
            name, domain, codomain
        ):
            node = type(term)
            clean_domain = _sanitize_binders(domain)
            clean_body = _sanitize_binders(codomain)
            if is_machine_name(name):
                fresh_name = _unused(_sanitize(name), clean_body)
                clean_body = cc.subst1(clean_body, name, cc.Var(fresh_name))
                name = fresh_name
            return node(name, clean_domain, clean_body)
        case cc.Let(name, bound, annot, body):
            clean_bound = _sanitize_binders(bound)
            clean_annot = _sanitize_binders(annot)
            clean_body = _sanitize_binders(body)
            if is_machine_name(name):
                fresh_name = _unused(_sanitize(name), clean_body)
                clean_body = cc.subst1(clean_body, name, cc.Var(fresh_name))
                name = fresh_name
            return cc.Let(name, clean_bound, clean_annot, clean_body)
        case _:
            rebuilt_children = [
                (names, _sanitize_binders(sub)) for names, sub in _children(term)
            ]
            return _rebuild(term, [sub for _, sub in rebuilt_children])


def _children(term: cc.Term):
    from repro.cc.ast import children

    return children(term)


def _rebuild(term: cc.Term, new_children: list[cc.Term]) -> cc.Term:
    match term:
        case cc.App():
            return cc.App(*new_children)
        case cc.Pair():
            return cc.Pair(*new_children)
        case cc.Fst():
            return cc.Fst(*new_children)
        case cc.Snd():
            return cc.Snd(*new_children)
        case cc.If():
            return cc.If(*new_children)
        case cc.Succ():
            return cc.Succ(*new_children)
        case cc.NatElim():
            return cc.NatElim(*new_children)
        case _:
            return term


def _all_names(term: cc.Term) -> set[str]:
    """Every variable name occurring in ``term`` — free, bound, or binder."""
    names: set[str] = set()
    for sub in cc.subterms(term):
        if isinstance(sub, cc.Var):
            names.add(sub.name)
        name = getattr(sub, "name", None)
        if isinstance(name, str):
            names.add(name)
    return names


def _unused(base: str, body: cc.Term) -> str:
    # Avoid *any* occurring name, not just free ones: colliding with a bound
    # name would make the capture-avoiding substitution rename that binder
    # with a fresh (machine, unlexable) name, defeating the sanitizer.
    used = _all_names(body)
    candidate = base
    counter = 0
    while candidate in used:
        counter += 1
        candidate = f"{base}_{counter}"
    return candidate


def _pp(term: cc.Term, prec: int) -> str:
    match term:
        case cc.Var(name):
            return name
        case cc.Star():
            return "Type"
        case cc.Box():
            return "Kind"
        case cc.Bool():
            return "Bool"
        case cc.BoolLit(value):
            return "true" if value else "false"
        case cc.Nat():
            return "Nat"
        case cc.Zero():
            return "0"
        case cc.Succ():
            value = cc.nat_value(term)
            if value is not None:
                return str(value)
            return _parens(f"succ {_pp(term.pred, _PREC_ATOM)}", prec > _PREC_APP)
        case cc.Pi(name, domain, codomain):
            if name == "_" or name not in cc.free_vars(codomain):
                text = f"{_pp(domain, _PREC_APP)} -> {_pp(codomain, _PREC_ARROW)}"
                return _parens(text, prec > _PREC_ARROW)
            text = f"forall ({name} : {_pp(domain, _PREC_TERM)}), {_pp(codomain, _PREC_TERM)}"
            return _parens(text, prec > _PREC_TERM)
        case cc.Lam(name, domain, body):
            text = f"\\ ({name} : {_pp(domain, _PREC_TERM)}). {_pp(body, _PREC_TERM)}"
            return _parens(text, prec > _PREC_TERM)
        case cc.App(fn, arg):
            text = f"{_pp(fn, _PREC_APP)} {_pp(arg, _PREC_ATOM)}"
            return _parens(text, prec > _PREC_APP)
        case cc.Let(name, bound, annot, body):
            text = (
                f"let {name} = {_pp(bound, _PREC_TERM)}"
                f" : {_pp(annot, _PREC_APP)} in {_pp(body, _PREC_TERM)}"
            )
            return _parens(text, prec > _PREC_TERM)
        case cc.Sigma(name, first, second):
            text = f"exists ({name} : {_pp(first, _PREC_TERM)}), {_pp(second, _PREC_TERM)}"
            return _parens(text, prec > _PREC_TERM)
        case cc.Pair(fst_val, snd_val, annot):
            return (
                f"<{_pp(fst_val, _PREC_TERM)}, {_pp(snd_val, _PREC_TERM)}>"
                f" as {_pp(annot, _PREC_ATOM)}"
            )
        case cc.Fst(pair):
            return _parens(f"fst {_pp(pair, _PREC_ATOM)}", prec > _PREC_APP)
        case cc.Snd(pair):
            return _parens(f"snd {_pp(pair, _PREC_ATOM)}", prec > _PREC_APP)
        case cc.If(cond, then_branch, else_branch):
            text = (
                f"if {_pp(cond, _PREC_TERM)} then {_pp(then_branch, _PREC_TERM)}"
                f" else {_pp(else_branch, _PREC_TERM)}"
            )
            return _parens(text, prec > _PREC_TERM)
        case cc.NatElim(motive, base, step, target):
            return (
                f"natelim({_pp(motive, _PREC_TERM)}, {_pp(base, _PREC_TERM)},"
                f" {_pp(step, _PREC_TERM)}, {_pp(target, _PREC_TERM)})"
            )
        case _:
            raise TypeError(f"not a CC term: {term!r}")


def _parens(text: str, needed: bool) -> str:
    return f"({text})" if needed else text
