"""Print CC terms back into parseable surface syntax.

``parse_term(to_surface(e))`` is α-equal to ``e`` for any CC term whose
variable names are lexable identifiers; machine-generated names (which
contain ``$``) are sanitized first.  The round-trip property is tested in
``tests/test_surface_printer.py`` and used by the CLI to emit readable
output.

Both passes are **iterative**: the renderer streams string fragments via
the shared work-stack engine of :mod:`repro.common.render`, and the binder
sanitizer is a spec-driven post-order rebuild, so ~10k-node-deep terms
print without approaching the Python recursion limit.
"""

from __future__ import annotations

from repro import cc
from repro.cc.ast import LANGUAGE
from repro.common.names import base_name, is_machine_name
from repro.common.render import render, succ_chain, wrap as _wrap

__all__ = ["sanitize_names", "to_surface"]

_PREC_TERM = 0  # binders, let, if
_PREC_ARROW = 1
_PREC_APP = 2
_PREC_ATOM = 3


def to_surface(term: cc.Term) -> str:
    """Render ``term`` as parseable surface syntax."""
    return render(sanitize_names(term), _pieces, _PREC_TERM)


def sanitize_names(term: cc.Term) -> cc.Term:
    """Rewrite machine names (``x$7``) into lexable ones (``x_7``)."""
    mapping: dict[str, cc.Term] = {}
    for name in cc.free_vars(term):
        if is_machine_name(name):
            mapping[name] = cc.Var(_sanitize(name))
    term = cc.subst(term, mapping)
    return _sanitize_binders(term)


def _sanitize(name: str) -> str:
    stem = base_name(name)
    suffix = name.split("$", 1)[1] if "$" in name else ""
    return f"{stem}_{suffix}" if suffix else stem


def _sanitize_binders(term: cc.Term) -> cc.Term:
    """Rename machine-named binders via capture-avoiding substitution.

    Iterative post-order rebuild driven by the kernel node specs; subtrees
    without machine names are shared with the input unchanged.
    """
    out: list = [None]
    # Tasks: ("visit", term, dest, idx) | ("build", node, spec, parts, dest, idx)
    tasks: list = [("visit", term, out, 0)]
    while tasks:
        task = tasks.pop()
        if task[0] == "visit":
            _, node, dest, idx = task
            spec = LANGUAGE.spec(node)
            if not spec.children:
                dest[idx] = node
                continue
            parts: list = [None] * len(spec.children)
            tasks.append(("build", node, spec, parts, dest, idx))
            for position, child in enumerate(spec.children):
                tasks.append(("visit", getattr(node, child.attr), parts, position))
        else:
            _, node, spec, parts, dest, idx = task
            rebuilt = dict(zip((child.attr for child in spec.children), parts))
            names = {attr: getattr(node, attr) for attr in spec.binder_attrs}
            for attr, name in names.items():
                if not is_machine_name(name):
                    continue
                scoped = [
                    child.attr for child in spec.children if attr in child.binders
                ]
                fresh_name = _unused(
                    _sanitize(name), *(rebuilt[child_attr] for child_attr in scoped)
                )
                for child_attr in scoped:
                    rebuilt[child_attr] = cc.subst1(
                        rebuilt[child_attr], name, cc.Var(fresh_name)
                    )
                names[attr] = fresh_name
            if all(value is getattr(node, attr) for attr, value in rebuilt.items()) and all(
                name is getattr(node, attr) for attr, name in names.items()
            ):
                dest[idx] = node
                continue
            args = []
            for attr in spec.field_order:
                if attr in names:
                    args.append(names[attr])
                elif attr in rebuilt:
                    args.append(rebuilt[attr])
                else:
                    args.append(getattr(node, attr))
            dest[idx] = type(node)(*args)
    return out[0]


def _all_names(term: cc.Term) -> set[str]:
    """Every variable name occurring in ``term`` — free, bound, or binder."""
    names: set[str] = set()
    for sub in cc.subterms(term):
        if isinstance(sub, cc.Var):
            names.add(sub.name)
        name = getattr(sub, "name", None)
        if isinstance(name, str):
            names.add(name)
    return names


def _unused(base: str, *bodies: cc.Term) -> str:
    # Avoid *any* occurring name, not just free ones: colliding with a bound
    # name would make the capture-avoiding substitution rename that binder
    # with a fresh (machine, unlexable) name, defeating the sanitizer.
    used: set[str] = set()
    for body in bodies:
        used |= _all_names(body)
    candidate = base
    counter = 0
    while candidate in used:
        counter += 1
        candidate = f"{base}_{counter}"
    return candidate


def _pieces(term: cc.Term, prec: int) -> list:
    """The fragments of ``term`` at ``prec``: strings and (subterm, prec)."""
    match term:
        case cc.Var(name):
            return [name]
        case cc.Star():
            return ["Type"]
        case cc.Box():
            return ["Kind"]
        case cc.Bool():
            return ["Bool"]
        case cc.BoolLit(value):
            return ["true" if value else "false"]
        case cc.Nat():
            return ["Nat"]
        case cc.Zero():
            return ["0"]
        case cc.Succ():
            depth, core = succ_chain(term, cc.Succ)
            if isinstance(core, cc.Zero):
                return [str(depth)]
            pieces = ["succ (" * (depth - 1), "succ ", (core, _PREC_ATOM), ")" * (depth - 1)]
            return _wrap(pieces, prec > _PREC_APP)
        case cc.Pi(name, domain, codomain):
            if name == "_" or name not in cc.cached_free_vars(codomain):
                pieces = [(domain, _PREC_APP), " -> ", (codomain, _PREC_ARROW)]
                return _wrap(pieces, prec > _PREC_ARROW)
            pieces = [
                f"forall ({name} : ",
                (domain, _PREC_TERM),
                "), ",
                (codomain, _PREC_TERM),
            ]
            return _wrap(pieces, prec > _PREC_TERM)
        case cc.Lam(name, domain, body):
            pieces = [f"\\ ({name} : ", (domain, _PREC_TERM), "). ", (body, _PREC_TERM)]
            return _wrap(pieces, prec > _PREC_TERM)
        case cc.App(fn, arg):
            return _wrap([(fn, _PREC_APP), " ", (arg, _PREC_ATOM)], prec > _PREC_APP)
        case cc.Let(name, bound, annot, body):
            pieces = [
                f"let {name} = ",
                (bound, _PREC_TERM),
                " : ",
                (annot, _PREC_APP),
                " in ",
                (body, _PREC_TERM),
            ]
            return _wrap(pieces, prec > _PREC_TERM)
        case cc.Sigma(name, first, second):
            pieces = [
                f"exists ({name} : ",
                (first, _PREC_TERM),
                "), ",
                (second, _PREC_TERM),
            ]
            return _wrap(pieces, prec > _PREC_TERM)
        case cc.Pair(fst_val, snd_val, annot):
            return [
                "<",
                (fst_val, _PREC_TERM),
                ", ",
                (snd_val, _PREC_TERM),
                "> as ",
                (annot, _PREC_ATOM),
            ]
        case cc.Fst(pair):
            return _wrap(["fst ", (pair, _PREC_ATOM)], prec > _PREC_APP)
        case cc.Snd(pair):
            return _wrap(["snd ", (pair, _PREC_ATOM)], prec > _PREC_APP)
        case cc.If(cond, then_branch, else_branch):
            pieces = [
                "if ",
                (cond, _PREC_TERM),
                " then ",
                (then_branch, _PREC_TERM),
                " else ",
                (else_branch, _PREC_TERM),
            ]
            return _wrap(pieces, prec > _PREC_TERM)
        case cc.NatElim(motive, base, step, target):
            return [
                "natelim(",
                (motive, _PREC_TERM),
                ", ",
                (base, _PREC_TERM),
                ", ",
                (step, _PREC_TERM),
                ", ",
                (target, _PREC_TERM),
                ")",
            ]
        case _:
            raise TypeError(f"not a CC term: {term!r}")
